package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVecOps(t *testing.T) {
	v := Vec{1, -2, 3}
	u := Vec{4, 5, -6}
	if got := v.Add(u); !got.Equal(Vec{5, 3, -3}, 0) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(u); !got.Equal(Vec{-3, -7, 9}, 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); !got.Equal(Vec{2, -4, 6}, 0) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(u); got != 1*4+(-2)*5+3*(-6) {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Norm1(); got != 6 {
		t.Errorf("Norm1 = %v", got)
	}
	if got := v.NormInf(); got != 3 {
		t.Errorf("NormInf = %v", got)
	}
	if got := v.Norm2(); math.Abs(got-math.Sqrt(14)) > 1e-12 {
		t.Errorf("Norm2 = %v", got)
	}
	if got := v.AddScaled(2, u); !got.Equal(Vec{9, 8, -9}, 0) {
		t.Errorf("AddScaled = %v", got)
	}
}

func TestVecCloneIndependent(t *testing.T) {
	v := Vec{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone aliases original storage")
	}
}

func TestVecDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Vec{1}.Add(Vec{1, 2})
}

func TestMatMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if got := a.Mul(b); !got.Equal(want, 0) {
		t.Errorf("Mul = %v", got)
	}
}

func TestMatMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	v := Vec{1, 0, -1}
	if got := a.MulVec(v); !got.Equal(Vec{-2, -2}, 0) {
		t.Errorf("MulVec = %v", got)
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	want := FromRows([][]float64{{1, 4}, {2, 5}, {3, 6}})
	if got := a.T(); !got.Equal(want, 0) {
		t.Errorf("T = %v", got)
	}
}

func TestIdentityAndDiag(t *testing.T) {
	if got := Identity(3).MulVec(Vec{1, 2, 3}); !got.Equal(Vec{1, 2, 3}, 0) {
		t.Errorf("Identity·v = %v", got)
	}
	d := Diag([]float64{2, 3})
	if got := d.MulVec(Vec{1, 1}); !got.Equal(Vec{2, 3}, 0) {
		t.Errorf("Diag·v = %v", got)
	}
}

func TestPow(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {0, 1}})
	p := Pow(a, 5)
	want := FromRows([][]float64{{1, 5}, {0, 1}})
	if !p.Equal(want, 1e-12) {
		t.Errorf("Pow = %v", p)
	}
	if !Pow(a, 0).Equal(Identity(2), 0) {
		t.Error("Pow(a,0) != I")
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a := FromRows([][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}})
	b := Vec{8, -11, -3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(Vec{2, 3, -1}, 1e-10) {
		t.Errorf("Solve = %v, want [2 3 -1]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, Vec{1, 1}); err == nil {
		t.Fatal("expected error for singular matrix")
	}
}

func TestInverse(t *testing.T) {
	a := FromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Mul(inv); !got.Equal(Identity(2), 1e-12) {
		t.Errorf("A·A⁻¹ = %v", got)
	}
}

func TestDet(t *testing.T) {
	a := FromRows([][]float64{{3, 8}, {4, 6}})
	if got := Det(a); math.Abs(got-(-14)) > 1e-12 {
		t.Errorf("Det = %v, want -14", got)
	}
	if got := Det(FromRows([][]float64{{1, 2}, {2, 4}})); got != 0 {
		t.Errorf("Det singular = %v, want 0", got)
	}
}

// randomWellConditioned returns a random n×n matrix that is diagonally
// dominant, hence invertible.
func randomWellConditioned(rng *rand.Rand, n int) *Mat {
	a := New(n, n)
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := rng.NormFloat64()
			a.Set(i, j, v)
			sum += math.Abs(v)
		}
		a.Set(i, i, sum+1+rng.Float64())
	}
	return a
}

func TestSolveRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(6)
		a := randomWellConditioned(rng, n)
		want := make(Vec, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := Solve(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !got.Equal(want, 1e-8) {
			t.Fatalf("trial %d: Solve mismatch: got %v want %v", trial, got, want)
		}
	}
}

func TestInversePowConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(4)
		a := randomWellConditioned(rng, n)
		inv, err := Inverse(a)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Mul(inv).Equal(Identity(n), 1e-8) || !inv.Mul(a).Equal(Identity(n), 1e-8) {
			t.Fatalf("trial %d: inverse not two-sided", trial)
		}
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		a, b, c := randomDense(rng, n), randomDense(rng, n), randomDense(rng, n)
		return a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTransposeOfProductProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		a, b := randomDense(rng, n), randomDense(rng, n)
		return a.Mul(b).T().Equal(b.T().Mul(a.T()), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func randomDense(rng *rand.Rand, n int) *Mat {
	a := New(n, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	return a
}
