package mat

import (
	"fmt"
	"strings"
)

// Mat is a dense row-major matrix with R rows and C columns.
type Mat struct {
	R, C int
	Data []float64 // len R*C, Data[i*C+j] = entry (i,j)
}

// New returns a zero R×C matrix.
func New(r, c int) *Mat {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: New(%d,%d): negative dimension", r, c))
	}
	return &Mat{R: r, C: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices; all rows must share one length.
func FromRows(rows [][]float64) *Mat {
	r := len(rows)
	if r == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("mat: FromRows: row %d has %d entries, want %d", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Mat {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d []float64) *Mat {
	m := New(len(d), len(d))
	for i, x := range d {
		m.Data[i*len(d)+i] = x
	}
	return m
}

// At returns entry (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.C+j] }

// Set assigns entry (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.C+j] = v }

// Row returns a copy of row i as a Vec.
func (m *Mat) Row(i int) Vec {
	out := make(Vec, m.C)
	copy(out, m.Data[i*m.C:(i+1)*m.C])
	return out
}

// RowView returns row i as a Vec aliasing the matrix storage — no copy.
// Mutating the view mutates the matrix; use Row for an owned copy.
func (m *Mat) RowView(i int) Vec { return Vec(m.Data[i*m.C : (i+1)*m.C]) }

// Col returns a copy of column j as a Vec.
func (m *Mat) Col(j int) Vec {
	out := make(Vec, m.R)
	for i := 0; i < m.R; i++ {
		out[i] = m.Data[i*m.C+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	out := New(m.R, m.C)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose of m.
func (m *Mat) T() *Mat {
	out := New(m.C, m.R)
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			out.Data[j*m.R+i] = m.Data[i*m.C+j]
		}
	}
	return out
}

// Add returns m + n.
func (m *Mat) Add(n *Mat) *Mat {
	m.mustSameShape(n, "Add")
	out := New(m.R, m.C)
	for i := range m.Data {
		out.Data[i] = m.Data[i] + n.Data[i]
	}
	return out
}

// Sub returns m - n.
func (m *Mat) Sub(n *Mat) *Mat {
	m.mustSameShape(n, "Sub")
	out := New(m.R, m.C)
	for i := range m.Data {
		out.Data[i] = m.Data[i] - n.Data[i]
	}
	return out
}

// Scale returns a*m.
func (m *Mat) Scale(a float64) *Mat {
	out := New(m.R, m.C)
	for i := range m.Data {
		out.Data[i] = a * m.Data[i]
	}
	return out
}

// Mul returns the matrix product m·n.
func (m *Mat) Mul(n *Mat) *Mat {
	if m.C != n.R {
		panic(fmt.Sprintf("mat: Mul: inner dimensions %d vs %d", m.C, n.R))
	}
	out := New(m.R, n.C)
	for i := 0; i < m.R; i++ {
		for k := 0; k < m.C; k++ {
			a := m.Data[i*m.C+k]
			if a == 0 {
				continue
			}
			for j := 0; j < n.C; j++ {
				out.Data[i*n.C+j] += a * n.Data[k*n.C+j]
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·v.
func (m *Mat) MulVec(v Vec) Vec {
	if m.C != len(v) {
		panic(fmt.Sprintf("mat: MulVec: %d columns vs vector length %d", m.C, len(v)))
	}
	out := make(Vec, m.R)
	for i := 0; i < m.R; i++ {
		s := 0.0
		row := m.Data[i*m.C : (i+1)*m.C]
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out
}

// MulVecInto writes the matrix-vector product m·v into dst without
// allocating. dst must have length m.R and must not alias v.
func (m *Mat) MulVecInto(dst, v Vec) {
	if m.C != len(v) {
		panic(fmt.Sprintf("mat: MulVecInto: %d columns vs vector length %d", m.C, len(v)))
	}
	if len(dst) != m.R {
		panic(fmt.Sprintf("mat: MulVecInto: dst length %d, want %d rows", len(dst), m.R))
	}
	for i := 0; i < m.R; i++ {
		s := 0.0
		row := m.Data[i*m.C : (i+1)*m.C]
		for j, a := range row {
			s += a * v[j]
		}
		dst[i] = s
	}
}

// Pow returns m^k for k ≥ 0 (m must be square); Pow(m, 0) is the identity.
func Pow(m *Mat, k int) *Mat {
	if m.R != m.C {
		panic("mat: Pow: matrix not square")
	}
	if k < 0 {
		panic("mat: Pow: negative exponent")
	}
	out := Identity(m.R)
	base := m.Clone()
	for k > 0 {
		if k&1 == 1 {
			out = out.Mul(base)
		}
		base = base.Mul(base)
		k >>= 1
	}
	return out
}

// Equal reports whether m and n agree entrywise within tol.
func (m *Mat) Equal(n *Mat, tol float64) bool {
	if m.R != n.R || m.C != n.C {
		return false
	}
	for i := range m.Data {
		d := m.Data[i] - n.Data[i]
		if d > tol || d < -tol {
			return false
		}
	}
	return true
}

// String renders the matrix row by row.
func (m *Mat) String() string {
	var b strings.Builder
	for i := 0; i < m.R; i++ {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(Vec(m.Data[i*m.C : (i+1)*m.C]).String())
	}
	return b.String()
}

func (m *Mat) mustSameShape(n *Mat, op string) {
	if m.R != n.R || m.C != n.C {
		panic(fmt.Sprintf("mat: %s: shape mismatch %dx%d vs %dx%d", op, m.R, m.C, n.R, n.C))
	}
}
