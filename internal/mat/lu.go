package mat

import (
	"errors"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters a matrix
// that is singular to working precision.
var ErrSingular = errors.New("mat: matrix is singular")

// LU holds an LU factorization with partial pivoting: P·A = L·U, stored
// compactly in lu (unit lower triangle implicit).
type LU struct {
	lu   *Mat
	piv  []int
	sign int
}

// Factor computes the LU factorization of the square matrix a.
func Factor(a *Mat) (*LU, error) {
	if a.R != a.C {
		return nil, errors.New("mat: Factor: matrix not square")
	}
	n := a.R
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivoting: pick the largest magnitude entry in column k.
		p, max := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > max {
				p, max = i, a
			}
		}
		if max < 1e-13 {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu.Data[p*n+j], lu.Data[k*n+j] = lu.Data[k*n+j], lu.Data[p*n+j]
			}
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		pivVal := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivVal
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Set(i, j, lu.At(i, j)-m*lu.At(k, j))
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve returns x with A·x = b.
func (f *LU) Solve(b Vec) Vec {
	n := f.lu.R
	mustSameLen(len(b), n, "LU.Solve")
	x := make(Vec, n)
	// Apply the permutation, then forward substitution (L has unit diagonal).
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s / f.lu.At(i, i)
	}
	return x
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.R; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve returns x with a·x = b, factoring a on the fly.
func Solve(a *Mat, b Vec) (Vec, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Inverse returns a⁻¹.
func Inverse(a *Mat) (*Mat, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	n := a.R
	inv := New(n, n)
	e := make(Vec, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		col := f.Solve(e)
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
		e[j] = 0
	}
	return inv, nil
}

// Det returns the determinant of a, or 0 if a is singular to working
// precision.
func Det(a *Mat) float64 {
	f, err := Factor(a)
	if err != nil {
		return 0
	}
	return f.Det()
}
