// Package mat provides the small dense linear-algebra kernel used throughout
// the repository: vectors, row-major matrices, LU factorization with partial
// pivoting, inversion, and matrix powers.
//
// The package is deliberately minimal — the control and set computations in
// this repository work with systems of a handful of dimensions, so a simple,
// allocation-light dense implementation is both sufficient and easy to audit.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Vec is a dense column vector.
type Vec []float64

// NewVec returns a zero vector of dimension n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a deep copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Add returns v + u.
func (v Vec) Add(u Vec) Vec {
	mustSameLen(len(v), len(u), "Vec.Add")
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] + u[i]
	}
	return out
}

// Sub returns v - u.
func (v Vec) Sub(u Vec) Vec {
	mustSameLen(len(v), len(u), "Vec.Sub")
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] - u[i]
	}
	return out
}

// Scale returns a*v.
func (v Vec) Scale(a float64) Vec {
	out := make(Vec, len(v))
	for i := range v {
		out[i] = a * v[i]
	}
	return out
}

// Dot returns the inner product of v and u.
func (v Vec) Dot(u Vec) float64 {
	mustSameLen(len(v), len(u), "Vec.Dot")
	s := 0.0
	for i := range v {
		s += v[i] * u[i]
	}
	return s
}

// Norm1 returns the 1-norm (sum of absolute values). The paper uses the
// 1-norm of the input as the per-step actuation energy cost.
func (v Vec) Norm1() float64 {
	s := 0.0
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// Norm2 returns the Euclidean norm.
func (v Vec) Norm2() float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum absolute entry.
func (v Vec) NormInf() float64 {
	s := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > s {
			s = a
		}
	}
	return s
}

// AddScaled returns v + a*u.
func (v Vec) AddScaled(a float64, u Vec) Vec {
	mustSameLen(len(v), len(u), "Vec.AddScaled")
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] + a*u[i]
	}
	return out
}

// Equal reports whether v and u agree entrywise within tol.
func (v Vec) Equal(u Vec, tol float64) bool {
	if len(v) != len(u) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-u[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the vector as "[x0 x1 ...]" with short float formatting.
func (v Vec) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, x := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.6g", x)
	}
	b.WriteByte(']')
	return b.String()
}

func mustSameLen(a, b int, op string) {
	if a != b {
		panic(fmt.Sprintf("mat: %s: dimension mismatch %d vs %d", op, a, b))
	}
}
