// Package main_test hosts the benchmark harness that regenerates every
// table and figure of the paper's evaluation (see DESIGN.md §4 for the
// experiment index), plus micro-benchmarks of the per-step costs the
// Section IV-A timing analysis relies on, the ablation benches of
// DESIGN.md §5, and cross-plant benches over the scenario-engine registry.
//
// The table/figure benches run a reduced-but-faithful version of each
// experiment per iteration (training included where the experiment trains)
// and report the headline metrics via b.ReportMetric, so `go test -bench`
// output doubles as a results table. Full-scale runs (500 cases, as in the
// paper) are produced by `go run ./cmd/oic all -cases 500`.
package main_test

import (
	"math/rand"
	"testing"

	"oic/internal/acc"
	"oic/internal/controller"
	"oic/internal/core"
	"oic/internal/exp"
	"oic/internal/mat"
	"oic/internal/plant"
	"oic/internal/reach"

	_ "oic/internal/orbit"
	_ "oic/internal/thermo"
)

// benchOpt is the reduced experiment size used per benchmark iteration.
// The saving metrics it reports verify the regeneration machinery, not the
// paper's numbers: at 40 training episodes the DQN is deliberately
// under-trained so one iteration stays fast. Full-scale regeneration with
// converged agents is `go run ./cmd/oic all -cases 500 -train 500`, whose
// results are recorded in EXPERIMENTS.md.
func benchOpt() exp.Options {
	return exp.Options{Cases: 24, Steps: 100, Seed: 1, TrainEpisodes: 40}
}

func mustPlant(b *testing.B, name string) plant.Plant {
	b.Helper()
	p, err := plant.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkFig4 regenerates Figure 4 (fuel-saving distribution of
// bang-bang and DRL skipping vs RMPC-only on the Eq. 8 sinusoid).
func BenchmarkFig4(b *testing.B) {
	p := mustPlant(b, "acc")
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig4(p, benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if r.Violations != 0 {
			b.Fatalf("safety violations: %d", r.Violations)
		}
		b.ReportMetric(r.BBMean, "bb-fuel-saving-%")
		b.ReportMetric(r.DRLMean, "drl-fuel-saving-%")
		b.ReportMetric(r.SkipsDRL, "drl-skips/100")
	}
}

// BenchmarkTable1Fig5 regenerates Table I and Figure 5 (savings across the
// shrinking v_f ranges Ex.1–Ex.5). One scenario per iteration would skew
// metrics, so each iteration runs the full 5-scenario sweep.
func BenchmarkTable1Fig5(b *testing.B) {
	p := mustPlant(b, "acc")
	opt := benchOpt()
	opt.Cases = 10
	opt.TrainEpisodes = 25
	for i := 0; i < b.N; i++ {
		r, err := exp.SweepLadder(p, "range", opt)
		if err != nil {
			b.Fatal(err)
		}
		first := r.Points[0]
		last := r.Points[len(r.Points)-1]
		b.ReportMetric(first.DRLSaving, "ex1-drl-saving-%")
		b.ReportMetric(last.DRLSaving, "ex5-drl-saving-%")
	}
}

// BenchmarkFig6 regenerates Figure 6 (savings across the regularity ladder
// Ex.6–Ex.10).
func BenchmarkFig6(b *testing.B) {
	p := mustPlant(b, "acc")
	opt := benchOpt()
	opt.Cases = 10
	opt.TrainEpisodes = 25
	for i := 0; i < b.N; i++ {
		r, err := exp.SweepLadder(p, "regularity", opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Points[0].DRLSaving, "ex6-drl-saving-%")
		b.ReportMetric(r.Points[4].DRLSaving, "ex10-drl-saving-%")
	}
}

// BenchmarkTimingAnalysis regenerates the Section IV-A computation-time
// study (RMPC per-step cost vs monitor+policy overhead, skip rate, and the
// derived computation saving).
func BenchmarkTimingAnalysis(b *testing.B) {
	p := mustPlant(b, "acc")
	for i := 0; i < b.N; i++ {
		r, err := exp.Timing(p, benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ComputeSaving, "compute-saving-%")
		b.ReportMetric(float64(r.CtrlPerStep.Microseconds()), "rmpc-µs/step")
		b.ReportMetric(float64(r.MonitorPerStep.Microseconds()), "monitor-µs/step")
	}
}

// --- Cross-plant benches: the scenario engine over every registered plant. ---

// BenchmarkPlantConstruction measures the cost of acquiring each
// registered plant's headline instance. All three plants now amortize
// model construction: thermo and orbit share one scenario-independent
// model per process, and acc memoizes per v_f design range (its safety
// sets depend on the scenario), so after the first iteration this reports
// cache-hit cost everywhere.
func BenchmarkPlantConstruction(b *testing.B) {
	for _, name := range plant.Names() {
		p := mustPlant(b, name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.Instantiate(p.Headline()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlantEpisode measures one paired (always-run + bang-bang)
// evaluation episode per registered plant — the unit of work the
// experiment harness parallelizes — and reports the bang-bang skip rate.
func BenchmarkPlantEpisode(b *testing.B) {
	for _, name := range plant.Names() {
		p := mustPlant(b, name)
		b.Run(name, func(b *testing.B) {
			inst, err := p.Instantiate(p.Headline())
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(17))
			x0s, err := inst.SampleInitialStates(16, rng)
			if err != nil {
				b.Fatal(err)
			}
			steps := p.EpisodeSteps()
			var skipRate float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x0 := x0s[i%len(x0s)]
				w := inst.Disturbances(rng, steps)
				if _, err := inst.RunEpisode(core.AlwaysRun{}, x0, w); err != nil {
					b.Fatal(err)
				}
				ep, err := inst.RunEpisode(core.BangBang{}, x0, w)
				if err != nil {
					b.Fatal(err)
				}
				if ep.Result.ViolationsX != 0 {
					b.Fatalf("violations: %d", ep.Result.ViolationsX)
				}
				skipRate = ep.Result.SkipRate()
			}
			b.ReportMetric(100*skipRate, "bb-skip-%")
		})
	}
}

// --- Micro-benchmarks: the per-step costs behind the timing analysis. ---

var benchModel *acc.Model

func sharedACCModel(b *testing.B) *acc.Model {
	b.Helper()
	if benchModel == nil {
		m, err := acc.NewModel(acc.Config{})
		if err != nil {
			b.Fatal(err)
		}
		benchModel = m
	}
	return benchModel
}

// BenchmarkRMPCStep measures one κR computation (a warm-started LP
// resolve over varying states): the paper's 0.12 s/step quantity on our
// solver and hardware.
func BenchmarkRMPCStep(b *testing.B) {
	m := sharedACCModel(b)
	rng := rand.New(rand.NewSource(3))
	pts, err := m.Sets.XPrime.Sample(64, rng.Float64)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.RMPC.Compute(pts[i%len(pts)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonitorAndPolicy measures the skip path: the three-level set
// membership check plus a DQN forward pass — the paper's 0.02 s/step
// quantity.
func BenchmarkMonitorAndPolicy(b *testing.B) {
	m := sharedACCModel(b)
	agent, _, err := m.TrainDRL(acc.Fig4Scenario().Profile, acc.TrainConfig{Episodes: 2, Steps: 20})
	if err != nil {
		b.Fatal(err)
	}
	policy := m.DRLPolicy(agent)
	monitor := core.NewMonitor(m.Sets)
	rng := rand.New(rand.NewSource(4))
	pts, err := m.Sets.XPrime.Sample(64, rng.Float64)
	if err != nil {
		b.Fatal(err)
	}
	w := []mat.Vec{{0.5, 0}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := pts[i%len(pts)]
		if monitor.Level(x) == core.InXPrime {
			policy.Decide(i, x, w)
		}
	}
}

// BenchmarkDQNInference isolates the neural-network forward pass.
func BenchmarkDQNInference(b *testing.B) {
	m := sharedACCModel(b)
	agent, _, err := m.TrainDRL(acc.Fig4Scenario().Profile, acc.TrainConfig{Episodes: 2, Steps: 20})
	if err != nil {
		b.Fatal(err)
	}
	s := m.Encode(mat.Vec{150, 40}, []mat.Vec{{0.5, 0}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Greedy(s)
	}
}

// BenchmarkSafetySetConstruction measures the offline cost of building XI
// (the RMPC feasible-set projection, Proposition 1) and X′.
func BenchmarkSafetySetConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := acc.NewModel(acc.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §5). ---

// BenchmarkRCIMethods compares the two general routes to a robust control
// invariant set on the ACC plant: the RMPC feasible-set projection
// (Proposition 1) vs the maximal-RCI Pre-fixpoint.
func BenchmarkRCIMethods(b *testing.B) {
	m := sharedACCModel(b)
	b.Run("prop1-feasible-set", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rmpc, err := controller.NewRMPC(m.Sys, controller.RMPCConfig{
				Horizon: 10, StateWeight: 1, InputWeight: 0.1,
				XRef: mat.Vec{150, 40}, URef: mat.Vec{8},
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := rmpc.FeasibleSet(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("maximal-rci-fixpoint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := reach.MaximalRCI(m.Sys, reach.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMonitorAblation quantifies the price of soundness: skipping
// gated on X′ (sound, Theorem 1) vs gated on XI (unsound — violations can
// and do occur). Reported metrics are energy saving and violation counts.
func BenchmarkMonitorAblation(b *testing.B) {
	m := sharedACCModel(b)
	sc := acc.Fig4Scenario()
	// Unsound variant: pretend X' = XI, i.e. skip anywhere inside XI.
	unsound := core.SafetySets{X: m.Sets.X, XI: m.Sets.XI, XPrime: m.Sets.XI}
	rng := rand.New(rand.NewSource(9))
	x0s, err := m.SampleInitialStates(8, rng)
	if err != nil {
		b.Fatal(err)
	}
	run := func(sets core.SafetySets) (energy float64, violations int) {
		fw, err := core.NewFramework(m.Sys, m.RMPC, sets, core.BangBang{}, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, x0 := range x0s {
			vf := sc.Profile.Generate(rng, 100)
			sess, err := fw.NewSession(x0)
			if err != nil {
				b.Fatal(err)
			}
			for _, v := range vf {
				if _, err := sess.Step(m.Disturbance(v)); err != nil {
					// The unsound variant can drive κ infeasible; count it
					// as a violation and abandon the episode.
					violations++
					break
				}
			}
			energy += sess.Result.Energy
			violations += sess.Result.ViolationsX
		}
		return energy, violations
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eSound, vSound := run(m.Sets)
		eUnsound, vUnsound := run(unsound)
		if vSound != 0 {
			b.Fatalf("sound monitor produced %d violations", vSound)
		}
		b.ReportMetric(eSound, "sound-energy")
		b.ReportMetric(eUnsound, "unsound-energy")
		b.ReportMetric(float64(vUnsound), "unsound-violations")
	}
}

// BenchmarkDQNMemoryAblation compares perturbation-memory lengths r = 1
// (the paper's default) and r = 4 on the Fig. 4 scenario: reported metrics
// are the evaluated fuel savings of each trained agent.
func BenchmarkDQNMemoryAblation(b *testing.B) {
	m := sharedACCModel(b)
	sc := acc.Fig4Scenario()
	for i := 0; i < b.N; i++ {
		for _, r := range []int{1, 4} {
			agent, _, err := m.TrainDRL(sc.Profile, acc.TrainConfig{
				Episodes: 120, Memory: r, Seed: 1, // 120 episodes: enough for a representative comparison
			})
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(5))
			x0s, err := m.SampleInitialStates(10, rng)
			if err != nil {
				b.Fatal(err)
			}
			var fuelRM, fuelDRL float64
			pol := m.DRLPolicy(agent)
			for _, x0 := range x0s {
				vf := sc.Profile.Generate(rng, 100)
				epRM, err := m.RunEpisode(core.AlwaysRun{}, x0, vf, nil)
				if err != nil {
					b.Fatal(err)
				}
				epDR, err := m.RunEpisodeWithMemory(pol, x0, vf, nil, r)
				if err != nil {
					b.Fatal(err)
				}
				fuelRM += epRM.Fuel
				fuelDRL += epDR.Fuel
			}
			saving := 100 * (fuelRM - fuelDRL) / fuelRM
			if r == 1 {
				b.ReportMetric(saving, "r1-saving-%")
			} else {
				b.ReportMetric(saving, "r4-saving-%")
			}
		}
	}
}

// BenchmarkSkipBudgetChain measures the offline construction of the
// multi-step strengthened sets S₁…S₈ (the weakly-hard extension).
func BenchmarkSkipBudgetChain(b *testing.B) {
	m := sharedACCModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reach.ConsecutiveSkipSets(m.Sets.XI, m.Sys, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLPSolve measures the simplex kernel on an RMPC-sized program,
// split so the warm-start win is measured directly rather than inferred:
// "cold" forks a fresh workspace per solve (full two-phase simplex over
// the compiled form — the pre-parametric per-step cost), "warm" resolves
// on one workspace from the previous optimal basis (the steady-state
// per-step cost).
func BenchmarkLPSolve(b *testing.B) {
	m := sharedACCModel(b)
	x := mat.Vec{150, 40}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h := m.RMPC.ForSession().(*controller.RMPC)
			if _, err := h.ComputeSequence(x); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		h := m.RMPC.ForSession().(*controller.RMPC)
		if _, err := h.ComputeSequence(x); err != nil {
			b.Fatal(err) // prime the basis
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := h.ComputeSequence(x); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStrengthenedSafeSet measures the online-irrelevant but
// design-time-critical X′ construction from a given XI.
func BenchmarkStrengthenedSafeSet(b *testing.B) {
	m := sharedACCModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reach.StrengthenedSafeSet(m.Sets.XI, m.Sys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameworkStepSkip measures the full Algorithm 1 step on the
// pure skip path (monitor + policy + zero input + plant update) — the
// runtime the framework adds when no controller runs. Recording is off
// (the embedded-runtime mode) and the disturbance holds the state at the
// X′ setpoint under zero input, so every iteration skips and the step
// must not allocate at all.
func BenchmarkFrameworkStepSkip(b *testing.B) {
	m := sharedACCModel(b)
	fw, err := m.Framework(core.BangBang{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	sess, err := fw.NewSession(mat.Vec{150, 40})
	if err != nil {
		b.Fatal(err)
	}
	sess.SetRecording(false)
	// w = x − A·x − c at x = (150, 40): exactly cancels the drag decay, so
	// the skipped (u = 0) dynamics have a fixed point at the setpoint.
	w := mat.Vec{0, acc.Drag * acc.Delta * 40}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Step(w); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if sess.Result.Runs != 0 {
		b.Fatalf("skip bench ran the controller %d times", sess.Result.Runs)
	}
}
