module oic

go 1.24
