package oic

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"oic/internal/trace"
)

// The golden-trace corpus is the cross-PR regression net: one recorded
// episode per (plant, policy) pinned as canonical bytes under
// internal/trace/testdata/golden (shared with the decoder's fuzz seed
// corpus). The conformance test replays each against a freshly built
// engine and requires byte-identical decisions and states — any refactor
// that shifts a float in the controller, the monitor, a policy, or the
// codec trips it.
//
// Regenerate after an *intentional* numerical change with:
//
//	go test ./pkg/oic -run TestGoldenTraceConformance -update
var updateGolden = flag.Bool("update", false, "regenerate golden traces")

// goldenDir is the shared corpus location (also the fuzz seed corpus of
// internal/trace).
var goldenDir = filepath.Join("..", "..", "internal", "trace", "testdata", "golden")

type goldenCase struct {
	name  string
	cfg   Config
	seed  int64
	steps int
}

// goldenCases covers every registered plant with one κ-heavy episode
// (always-run: the controller solves at every step) and one DRL episode
// (the trained policy's decisions — and its training — are part of the
// pinned behavior).
var goldenCases = []goldenCase{
	{"acc-always-run", Config{Plant: "acc", Policy: PolicyAlwaysRun}, 7, 40},
	{"acc-drl", Config{Plant: "acc", Policy: PolicyDRL, Train: TrainConfig{Episodes: 24, Steps: 40, Seed: 5}}, 7, 40},
	{"thermo-always-run", Config{Plant: "thermo", Policy: PolicyAlwaysRun}, 7, 40},
	{"thermo-drl", Config{Plant: "thermo", Policy: PolicyDRL, Train: TrainConfig{Episodes: 24, Steps: 40, Seed: 5}}, 7, 40},
	{"orbit-always-run", Config{Plant: "orbit", Policy: PolicyAlwaysRun}, 7, 40},
	{"orbit-drl", Config{Plant: "orbit", Policy: PolicyDRL, Train: TrainConfig{Episodes: 24, Steps: 40, Seed: 5}}, 7, 40},
}

// goldenEngines caches one engine per golden configuration for the test
// binary (DRL configurations train once).
var goldenEngines struct {
	sync.Mutex
	m map[string]*Engine
}

func goldenEngine(t testing.TB, cfg Config) *Engine {
	t.Helper()
	key := fmt.Sprintf("%+v", cfg)
	goldenEngines.Lock()
	defer goldenEngines.Unlock()
	if goldenEngines.m == nil {
		goldenEngines.m = map[string]*Engine{}
	}
	if e, ok := goldenEngines.m[key]; ok {
		return e
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("building golden engine %+v: %v", cfg, err)
	}
	goldenEngines.m[key] = e
	return e
}

func goldenPath(name string) string { return filepath.Join(goldenDir, name+".oict") }

// recordGolden runs the case's seeded episode with tracing on and
// returns the trace — the exact recipe a client would use to produce a
// replayable log.
func recordGolden(t testing.TB, gc goldenCase) *Trace {
	t.Helper()
	eng := goldenEngine(t, gc.cfg)
	x0, w, err := eng.DrawCase(gc.seed, gc.steps)
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.NewSession(x0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.StartTrace(0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StepMany(context.Background(), w); err != nil {
		t.Fatal(err)
	}
	tr, err := s.Trace()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func readGolden(t testing.TB, name string) *Trace {
	t.Helper()
	b, err := os.ReadFile(goldenPath(name))
	if err != nil {
		t.Fatalf("reading golden trace (regenerate with -update): %v", err)
	}
	tr, err := trace.Decode(b)
	if err != nil {
		t.Fatalf("decoding golden trace %s: %v", name, err)
	}
	return tr
}

// TestGoldenTraceConformance is the acceptance gate: replaying every
// committed golden trace under its original configuration must reproduce
// the decisions and states byte-identically, and re-recording the episode
// must reproduce the committed bytes exactly.
func TestGoldenTraceConformance(t *testing.T) {
	if *updateGolden {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, gc := range goldenCases {
		t.Run(gc.name, func(t *testing.T) {
			if *updateGolden {
				tr := recordGolden(t, gc)
				b, err := trace.Encode(tr)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath(gc.name), b, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d steps, %d bytes)", goldenPath(gc.name), tr.Len(), len(b))
				return
			}
			tr := readGolden(t, gc.name)
			eng := goldenEngine(t, gc.cfg)

			// The fingerprint must invert to the recording configuration
			// (scenario and memory resolved to concrete values).
			got := ConfigFromTrace(tr)
			if got.Plant != gc.cfg.Plant || got.Scenario != eng.ScenarioID() ||
				got.Policy != eng.PolicyName() || got.Memory != eng.memory || got.Train != gc.cfg.Train {
				t.Errorf("fingerprint inverts to %+v, engine is %+v", got, eng.Config())
			}

			// Conformance replay: byte-identical decisions and states.
			rep, err := eng.Replay(tr, ReplayOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Diff.Identical {
				t.Errorf("replay diverged: flips=%d first=%d divergeStep=%d maxDiv=%g energy %g vs %g",
					rep.Diff.DecisionFlips, rep.Diff.FirstFlip, rep.Diff.DivergeStep,
					rep.Diff.MaxStateDivergence, rep.Diff.EnergyA, rep.Diff.EnergyB)
			}
			if rep.Violations != 0 {
				t.Errorf("replay reported %d safety violations", rep.Violations)
			}

			// Re-recording the episode reproduces the committed bytes.
			b, err := trace.Encode(recordGolden(t, gc))
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(goldenPath(gc.name))
			if err != nil {
				t.Fatal(err)
			}
			if string(b) != string(want) {
				t.Errorf("re-recorded episode differs from committed golden bytes (%d vs %d bytes)", len(b), len(want))
			}
		})
	}
}

// TestGoldenTracesAuditClean: every committed golden trace passes the
// offline auditor with zero findings — the recorded runtime evidence is
// consistent with the declared model and Theorem 1.
func TestGoldenTracesAuditClean(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating")
	}
	for _, gc := range goldenCases {
		t.Run(gc.name, func(t *testing.T) {
			tr := readGolden(t, gc.name)
			rep, err := goldenEngine(t, gc.cfg).AuditTrace(tr)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Clean {
				t.Errorf("audit findings on golden trace: %+v", rep.Findings)
			}
			if rep.Steps != tr.Len() {
				t.Errorf("audited %d steps, trace has %d", rep.Steps, tr.Len())
			}
		})
	}
}

// TestCorruptedTraceAuditFindings pins the auditor's sensitivity: each
// deliberate corruption of a golden trace yields exactly the expected
// finding kinds — no more (spurious findings would drown real ones), no
// fewer (a miss is a hole in the audit trail).
func TestCorruptedTraceAuditFindings(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating")
	}
	norm1 := func(u []float64) float64 {
		s := 0.0
		for _, v := range u {
			if v < 0 {
				s -= v
			} else {
				s += v
			}
		}
		return s
	}
	for _, gc := range goldenCases {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			tr := readGolden(t, gc.name)
			eng := goldenEngine(t, gc.cfg)

			kinds := func(tr *Trace) []string {
				rep, err := eng.AuditTrace(tr)
				if err != nil {
					t.Fatal(err)
				}
				seen := map[string]bool{}
				for _, f := range rep.Findings {
					seen[f.Kind] = true
				}
				out := make([]string, 0, len(seen))
				for k := range seen {
					out = append(out, k)
				}
				sort.Strings(out)
				return out
			}
			expect := func(name string, got, want []string) {
				t.Helper()
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Errorf("%s: finding kinds %v, want %v", name, got, want)
				}
			}

			// Wrong energy: exactly the accounting finding.
			c := tr.Clone()
			c.Energy += 1
			expect("wrong energy", kinds(c), []string{"energy-mismatch"})

			// Out-of-W disturbance: the recorded w leaves the declared set
			// *and* no longer explains the recorded transition.
			c = tr.Clone()
			c.Steps[0].W[0] += 1e6
			expect("out-of-W disturbance", kinds(c),
				[]string{"dynamics-mismatch", "out-of-model-disturbance"})

			// Flipped decision: claim a skip on a step that actually
			// actuated (unforced, inside X', u ≠ 0) — exactly the
			// skip-actuated finding.
			c = tr.Clone()
			flip := -1
			for i := range c.Steps {
				st := &c.Steps[i]
				if st.Ran && !st.Forced && st.Level == 0 && norm1(st.U) > 1e-9 {
					flip = i
					break
				}
			}
			if flip < 0 {
				// A learned policy may never have run by choice; the
				// always-run traces always expose a candidate.
				if gc.cfg.Policy == PolicyAlwaysRun {
					t.Fatalf("no unforced actuated step inside X' to flip in %s", gc.name)
				}
				return
			}
			c.Steps[flip].Ran = false
			expect("flipped decision", kinds(c), []string{"skip-actuated"})
		})
	}
}
