package oic

import (
	"context"
	"errors"
	"os"
	"testing"

	"oic/internal/trace"
)

// recordWith runs one seeded traced episode on eng — the same recipe as
// recordGolden, but against an arbitrary (e.g. artifact-loaded) engine.
func recordWith(t testing.TB, eng *Engine, seed int64, steps int) *Trace {
	t.Helper()
	x0, w, err := eng.DrawCase(seed, steps)
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.NewSession(x0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.StartTrace(0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StepMany(context.Background(), w); err != nil {
		t.Fatal(err)
	}
	tr, err := s.Trace()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// loadedEngine round-trips eng through the full artifact pipeline:
// snapshot, encode, decode, load. Everything the loaded engine computes
// with has passed through the wire format.
func loadedEngine(t testing.TB, eng *Engine) *Engine {
	t.Helper()
	a, err := eng.Artifact()
	if err != nil {
		t.Fatalf("Artifact: %v", err)
	}
	b, err := EncodeArtifact(a)
	if err != nil {
		t.Fatalf("EncodeArtifact: %v", err)
	}
	a2, err := DecodeArtifact(b)
	if err != nil {
		t.Fatalf("DecodeArtifact: %v", err)
	}
	le, err := LoadEngine(a2)
	if err != nil {
		t.Fatalf("LoadEngine: %v", err)
	}
	return le
}

// TestLoadEngineConformance is the tentpole acceptance gate: an engine
// loaded from its own encoded artifact replays every committed golden
// trace byte-identically and re-records the identical episode bytes —
// LoadEngine(Artifact(e)) is behaviorally indistinguishable from e while
// skipping set synthesis and DRL training entirely.
func TestLoadEngineConformance(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating")
	}
	for _, gc := range goldenCases {
		t.Run(gc.name, func(t *testing.T) {
			built := goldenEngine(t, gc.cfg)
			loaded := loadedEngine(t, built)

			if got, want := loaded.Config().Fingerprint(), built.Config().Fingerprint(); got != want {
				t.Errorf("loaded fingerprint %q, want %q", got, want)
			}
			if loaded.PolicyName() != built.PolicyName() || loaded.ScenarioID() != built.ScenarioID() {
				t.Errorf("loaded identity %s/%s, want %s/%s",
					loaded.ScenarioID(), loaded.PolicyName(), built.ScenarioID(), built.PolicyName())
			}

			// Replay the committed golden trace on the loaded engine.
			tr := readGolden(t, gc.name)
			rep, err := loaded.Replay(tr, ReplayOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Diff.Identical {
				t.Errorf("loaded engine diverges from golden trace: flips=%d first=%d divergeStep=%d maxDiv=%g",
					rep.Diff.DecisionFlips, rep.Diff.FirstFlip, rep.Diff.DivergeStep, rep.Diff.MaxStateDivergence)
			}

			// Re-record the episode on the loaded engine: byte-identical to
			// the committed corpus.
			b, err := trace.Encode(recordWith(t, loaded, gc.seed, gc.steps))
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(goldenPath(gc.name))
			if err != nil {
				t.Fatal(err)
			}
			if string(b) != string(want) {
				t.Errorf("loaded engine's episode differs from committed golden bytes (%d vs %d)", len(b), len(want))
			}

			// The loaded engine carries the full compiled state: skip budget
			// and (for DRL) training stats.
			wantMax, err := built.MaxSkipBudget()
			if err != nil {
				t.Fatal(err)
			}
			gotMax, err := loaded.MaxSkipBudget()
			if err != nil {
				t.Fatal(err)
			}
			if gotMax != wantMax {
				t.Errorf("max skip budget %d, want %d", gotMax, wantMax)
			}
			if gc.cfg.Policy == PolicyDRL && loaded.TrainStats().Episodes != built.TrainStats().Episodes {
				t.Errorf("train stats lost: %+v", loaded.TrainStats())
			}
		})
	}
}

// TestFingerprintCanonicalization pins the identity shared by the
// library, the oicd engine cache, and the artifact store: semantically
// equal configs fingerprint equal, distinct ones don't.
func TestFingerprintCanonicalization(t *testing.T) {
	base := Config{Plant: "acc"}
	same := []Config{
		{Plant: "acc", Policy: PolicyBangBang},
		{Plant: "acc", Scenario: "Fig.4"},
		{Plant: "acc", Memory: -3},
		{Plant: "acc", Train: TrainConfig{Episodes: 99}}, // non-DRL: training budget is irrelevant
	}
	for i, c := range same {
		if c.Fingerprint() != base.Fingerprint() {
			t.Errorf("config #%d fingerprint %q != base %q", i, c.Fingerprint(), base.Fingerprint())
		}
	}
	diff := []Config{
		{Plant: "thermo"},
		{Plant: "acc", Policy: PolicyAlwaysRun},
		{Plant: "acc", Scenario: "Ex.1"},
		{Plant: "acc", Policy: PolicyDRL, Train: TrainConfig{Episodes: 99}},
	}
	for i, c := range diff {
		if c.Fingerprint() == base.Fingerprint() {
			t.Errorf("config #%d fingerprint collides with base: %q", i, base.Fingerprint())
		}
	}
	// Canonical is idempotent.
	c := Config{Plant: "acc", Memory: -1}.Canonical()
	if c != c.Canonical() {
		t.Errorf("Canonical not idempotent: %+v vs %+v", c, c.Canonical())
	}
}

// TestLoadEngineRejectsMismatch: internally inconsistent artifacts fail
// with typed errors instead of building a silently wrong engine.
func TestLoadEngineRejectsMismatch(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating")
	}
	eng := goldenEngine(t, goldenCases[1].cfg) // acc-drl
	fresh := func() *Artifact {
		a, err := eng.Artifact()
		if err != nil {
			t.Fatal(err)
		}
		return a
	}

	a := fresh()
	a.Policy = nil // DRL config without a policy snapshot
	if _, err := LoadEngine(a); !errors.Is(err, ErrArtifactMismatch) {
		t.Errorf("missing policy: got %v, want ErrArtifactMismatch", err)
	}

	a = fresh()
	a.Meta.Plant = "no-such-plant"
	if _, err := LoadEngine(a); err == nil {
		t.Error("unknown plant accepted")
	}

	a = fresh()
	// Break the skip chain's monotone nesting: S_2 ⊄ S_1 after scaling.
	if len(a.Chain) >= 2 {
		a.Chain[1] = a.Chain[0].Scale(10)
		if _, err := LoadEngine(a); !errors.Is(err, ErrArtifactMismatch) {
			t.Errorf("broken chain: got %v, want ErrArtifactMismatch", err)
		}
	}

	a = fresh()
	a.Policy.WScale = []float64{12345} // wrong normalization for this scenario
	if _, err := LoadEngine(a); !errors.Is(err, ErrArtifactMismatch) {
		t.Errorf("wrong policy bounds: got %v, want ErrArtifactMismatch", err)
	}
}
