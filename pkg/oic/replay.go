package oic

import (
	"fmt"
	"time"

	"oic/internal/audit"
	"oic/internal/core"
	"oic/internal/mat"
	"oic/internal/trace"
)

// ReplayOptions tunes a replay (DESIGN.md §8). The zero value is a
// conformance replay: the recorded episode re-runs under its own policy
// and an unlimited budget, and the report's Diff.Identical asserts
// byte-identical decisions and states.
type ReplayOptions struct {
	// Policy substitutes the skipping policy Ω for the what-if run; ""
	// replays under the trace's recorded policy. PolicyDRL requires the
	// replaying engine to have been built with a DRL policy.
	Policy string `json:"policy,omitempty"`
	// ComputeBudget caps the total κ computations across the replayed
	// episode (≤ 0 = unlimited). Policy-chosen computes beyond the budget
	// are shed into guaranteed-safe skips; monitor-forced computes always
	// run — safety is never traded for budget.
	ComputeBudget int `json:"compute_budget,omitempty"`
	// Audit re-verifies the *recorded* trace against the engine's declared
	// model and safety sets (internal/audit) and attaches the findings —
	// the audit-trail half of the replay service.
	Audit bool `json:"audit,omitempty"`
	// IncludeTrace attaches the replayed episode's own trace to the
	// report (what-if consumers chain replays or persist the branch).
	IncludeTrace bool `json:"include_trace,omitempty"`
}

// AuditFinding is the wire form of one internal/audit violation.
type AuditFinding struct {
	Step int    `json:"step"`
	Kind string `json:"kind"`
	Msg  string `json:"msg"`
}

// AuditReport is the wire form of an offline trace re-verification.
type AuditReport struct {
	Steps    int            `json:"steps"`
	Clean    bool           `json:"clean"`
	Findings []AuditFinding `json:"findings,omitempty"`
}

// ReplayReport is the outcome of replaying a recorded episode: the
// structured diff between the recorded and replayed runs plus the safety
// accounting of both.
type ReplayReport struct {
	Plant    string `json:"plant"`
	Scenario string `json:"scenario"`
	// RecordedPolicy is the trace's policy; ReplayedPolicy the one the
	// replay ran (same unless ReplayOptions.Policy substituted it).
	RecordedPolicy string `json:"recorded_policy"`
	ReplayedPolicy string `json:"replayed_policy"`
	ComputeBudget  int    `json:"compute_budget,omitempty"`

	// Diff is the step-by-step comparison (A = recorded, B = replayed).
	Diff TraceDiff `json:"diff"`

	// Shed counts policy-chosen computes the replay budget converted into
	// safe skips (0 with an unlimited budget).
	Shed int `json:"shed"`

	// SafetyMargin* is the minimum over every state (x0 and successors)
	// of the distance to the XI boundary — positive means the whole
	// episode stayed strictly inside the Theorem 1 invariant; the delta
	// between the two is the what-if's safety cost or gain.
	SafetyMarginRecorded float64 `json:"safety_margin_recorded"`
	SafetyMarginReplayed float64 `json:"safety_margin_replayed"`

	// Violations counts replayed successor states outside X (Theorem 1:
	// stays 0 under any policy or budget).
	Violations int `json:"violations"`

	// Audit carries the recorded trace's re-verification when
	// ReplayOptions.Audit was set.
	Audit *AuditReport `json:"audit,omitempty"`

	// Trace is the replayed episode when ReplayOptions.IncludeTrace was
	// set.
	Trace *Trace `json:"trace,omitempty"`

	Elapsed time.Duration `json:"elapsed_ns"`
}

// AuditTrace re-verifies a recorded trace offline against the engine's
// declared dynamics and safety sets (internal/audit): disturbances inside
// W, transitions consistent with the model, every state inside X and XI,
// monitor semantics per Algorithm 1, and the recorded energy matching the
// inputs. A clean report means the log is consistent with the safety
// guarantee; a tampered or out-of-model log yields typed findings.
func (e *Engine) AuditTrace(t *Trace) (*AuditReport, error) {
	if err := e.checkTrace(t); err != nil {
		return nil, err
	}
	rep := audit.Run(e.System(), e.SafetySets(), t.ToResult(), audit.Options{})
	out := &AuditReport{Steps: rep.Steps, Clean: rep.OK()}
	for _, f := range rep.Findings {
		out.Findings = append(out.Findings, AuditFinding{Step: f.Step, Kind: f.Kind.String(), Msg: f.Msg})
	}
	return out, nil
}

// Replay re-runs a recorded episode on this engine — same initial state,
// same disturbance realizations — under the trace's own policy or a
// substituted one, optionally against a compute budget, and reports the
// structured diff. With zero options the replay is a conformance check:
// decisions and states must come back byte-identical (Diff.Identical),
// because the session pool resets controllers to their cold state and the
// whole stack is deterministic.
func (e *Engine) Replay(t *Trace, opts ReplayOptions) (*ReplayReport, error) {
	start := time.Now()
	if err := e.checkTrace(t); err != nil {
		return nil, err
	}
	polName := opts.Policy
	if polName == "" {
		polName = t.Meta.Policy
	}
	pol, err := e.resolvePolicy(polName)
	if err != nil {
		return nil, err
	}

	cs, err := e.acquireCore(t.X0)
	if err != nil {
		return nil, err
	}
	defer e.releaseCore(cs)

	meta := e.traceMeta()
	meta.Policy = pol.Name()
	rec := trace.NewRecorder(meta, t.X0, e.NU(), 0)
	mon := e.fw.Monitor()
	computes, shed := 0, 0
	for i := range t.Steps {
		x := cs.StateView()
		run := true
		if mon.Level(x) == core.InXPrime {
			// Consult Ω exactly as the recorded path did (same t, state
			// view, and disturbance window), then apply the what-if
			// budget: once spent, optional computes shed into safe skips.
			run = pol.Decide(cs.Time(), x, cs.RecentWView())
			if run && opts.ComputeBudget > 0 && computes >= opts.ComputeBudget {
				run, shed = false, shed+1
			}
		}
		r, err := cs.StepWithChoice(mat.Vec(t.Steps[i].W), run)
		if err != nil {
			return nil, fmt.Errorf("oic: replay step %d: %w", i, err)
		}
		if r.Ran {
			computes++
		}
		_ = rec.Append(r.Ran, r.Forced, uint8(r.Level), r.W, r.U, r.Next)
	}

	replayed := rec.Trace()
	rep := &ReplayReport{
		Plant:          e.cfg.Plant,
		Scenario:       e.ScenarioID(),
		RecordedPolicy: t.Meta.Policy,
		ReplayedPolicy: pol.Name(),
		ComputeBudget:  opts.ComputeBudget,
		Diff:           trace.Compare(t, replayed),
		Shed:           shed,
		Violations:     cs.Result.ViolationsX,
	}
	rep.SafetyMarginRecorded = e.safetyMargin(t)
	rep.SafetyMarginReplayed = e.safetyMargin(replayed)
	if opts.Audit {
		if rep.Audit, err = e.AuditTrace(t); err != nil {
			return nil, err
		}
	}
	if opts.IncludeTrace {
		rep.Trace = replayed
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// safetyMargin returns the episode's minimum distance to the XI boundary
// (−max violation over x0 and every successor): positive means every
// state stayed strictly inside the Theorem 1 invariant.
func (e *Engine) safetyMargin(t *Trace) float64 {
	xi := e.SafetySets().XI
	margin := 0.0
	for i, x := range t.States() {
		m := -xi.Violation(x)
		if i == 0 || m < margin {
			margin = m
		}
	}
	return margin
}

// Replay rebuilds the engine a trace fingerprints (plant, scenario,
// policy, memory, training budget and seed — a DRL policy retrains
// identically) and replays the episode on it. Callers that already hold
// the engine — the oicd server's cache, the conformance tests — use
// Engine.Replay directly and skip the rebuild.
func Replay(t *Trace, opts ReplayOptions) (*ReplayReport, error) {
	if t == nil {
		return nil, fmt.Errorf("%w: nil trace", ErrTraceMismatch)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	eng, err := NewEngine(ConfigFromTrace(t))
	if err != nil {
		return nil, err
	}
	return eng.Replay(t, opts)
}
