package oic

import (
	"context"
	"errors"
	"testing"
)

// tracedEpisode records one seeded always-run ACC episode and returns it
// with its case data.
func tracedEpisode(t *testing.T, seed int64, steps int) (*Trace, []float64, [][]float64) {
	t.Helper()
	e := accEngine(t)
	x0, w, err := e.DrawCase(seed, steps)
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.NewSession(x0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.StartTrace(0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StepMany(context.Background(), w); err != nil {
		t.Fatal(err)
	}
	tr, err := s.Trace()
	if err != nil {
		t.Fatal(err)
	}
	return tr, x0, w
}

func TestSessionTracingAPI(t *testing.T) {
	e := accEngine(t)
	x0, w, err := e.DrawCase(21, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.NewSession(x0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if s.Tracing() {
		t.Error("fresh session reports tracing")
	}
	if _, err := s.Trace(); !errors.Is(err, ErrNotTracing) {
		t.Errorf("Trace without StartTrace: %v", err)
	}
	if err := s.StartTrace(0); err != nil {
		t.Fatal(err)
	}
	if err := s.StartTrace(0); err != nil {
		t.Errorf("StartTrace not idempotent: %v", err)
	}
	if _, err := s.StepMany(context.Background(), w); err != nil {
		t.Fatal(err)
	}
	tr, err := s.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(w) || tr.NX != e.NX() || tr.NU != e.NU() {
		t.Errorf("trace shape %d steps %d×%d", tr.Len(), tr.NX, tr.NU)
	}
	if tr.Meta.Plant != "acc" || tr.Meta.Policy != PolicyAlwaysRun {
		t.Errorf("trace meta %+v", tr.Meta)
	}
	// Tracing survives Close (the recording is not pooled with the
	// workspace).
	info := s.Info()
	s.Close()
	tr2, err := s.Trace()
	if err != nil || tr2.Len() != info.T {
		t.Errorf("trace after close: %v (len %d, want %d)", err, tr2.Len(), info.T)
	}

	// StartTrace must come before the first step.
	s2, err := e.NewSession(x0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Step(context.Background(), w[0]); err != nil {
		t.Fatal(err)
	}
	if err := s2.StartTrace(0); err == nil {
		t.Error("StartTrace accepted mid-episode start")
	}
}

func TestTraceLimitStopsStepping(t *testing.T) {
	e := accEngine(t)
	x0, w, err := e.DrawCase(22, 5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.NewSession(x0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.StartTrace(3); err != nil {
		t.Fatal(err)
	}
	res, err := s.StepMany(context.Background(), w)
	if !errors.Is(err, ErrTraceLimit) {
		t.Fatalf("expected ErrTraceLimit, got %v", err)
	}
	if len(res) != 3 {
		t.Errorf("executed %d steps before the limit, want 3", len(res))
	}
	tr, err := s.Trace()
	if err != nil || tr.Len() != 3 {
		t.Errorf("trace %v len %d, want complete 3-step prefix", err, tr.Len())
	}
	// The session is refused further steps, not closed.
	if _, err := s.Step(context.Background(), w[3]); !errors.Is(err, ErrTraceLimit) {
		t.Errorf("step after limit: %v", err)
	}
}

func TestReplayWhatIfPolicy(t *testing.T) {
	tr, _, _ := tracedEpisode(t, 31, 30)
	e := accEngine(t)

	rep, err := e.Replay(tr, ReplayOptions{Policy: PolicyBangBang, Audit: true, IncludeTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecordedPolicy != PolicyAlwaysRun || rep.ReplayedPolicy != PolicyBangBang {
		t.Errorf("policies %s → %s", rep.RecordedPolicy, rep.ReplayedPolicy)
	}
	// Bang-bang skips wherever the monitor permits, so against an
	// always-run recording the diff must flip decisions and spend less.
	if rep.Diff.DecisionFlips == 0 || rep.Diff.Identical {
		t.Errorf("what-if replay reported no flips: %+v", rep.Diff)
	}
	if rep.Diff.ComputesB >= rep.Diff.ComputesA {
		t.Errorf("bang-bang computed %d ≥ always-run's %d", rep.Diff.ComputesB, rep.Diff.ComputesA)
	}
	if rep.Diff.EnergyB > rep.Diff.EnergyA {
		t.Errorf("bang-bang spent more energy (%g) than always-run (%g)", rep.Diff.EnergyB, rep.Diff.EnergyA)
	}
	// Theorem 1: the what-if stays safe, and its own trace audits clean.
	if rep.Violations != 0 {
		t.Errorf("what-if replay violated X %d times", rep.Violations)
	}
	if rep.Audit == nil || !rep.Audit.Clean {
		t.Errorf("recorded-trace audit: %+v", rep.Audit)
	}
	if rep.Trace == nil {
		t.Fatal("IncludeTrace returned no trace")
	}
	au, err := e.AuditTrace(rep.Trace)
	if err != nil || !au.Clean {
		t.Errorf("replayed trace does not audit clean: %v %+v", err, au)
	}
}

func TestReplayComputeBudget(t *testing.T) {
	tr, _, _ := tracedEpisode(t, 32, 30)
	e := accEngine(t)

	const budget = 5
	rep, err := e.Replay(tr, ReplayOptions{ComputeBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed == 0 {
		t.Error("tight budget shed nothing against an always-run recording")
	}
	// Optional computes respect the budget; only monitor-forced ones may
	// exceed it (safety is never traded for budget).
	if rep.Diff.ComputesB > budget+rep.Diff.ForcedB {
		t.Errorf("computes %d exceed budget %d + forced %d", rep.Diff.ComputesB, budget, rep.Diff.ForcedB)
	}
	if rep.Violations != 0 {
		t.Errorf("budgeted replay violated X %d times", rep.Violations)
	}
	if rep.Diff.ComputesA != rep.Diff.Steps {
		t.Errorf("always-run recording computed %d of %d steps", rep.Diff.ComputesA, rep.Diff.Steps)
	}
}

func TestReplayMismatchAndValidation(t *testing.T) {
	tr, _, _ := tracedEpisode(t, 33, 5)

	thermoEng, err := NewEngine(Config{Plant: "thermo", Policy: PolicyAlwaysRun})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := thermoEng.Replay(tr, ReplayOptions{}); !errors.Is(err, ErrTraceMismatch) {
		t.Errorf("cross-plant replay: %v", err)
	}
	if _, err := thermoEng.AuditTrace(tr); !errors.Is(err, ErrTraceMismatch) {
		t.Errorf("cross-plant audit: %v", err)
	}

	e := accEngine(t)
	bad := tr.Clone()
	bad.Steps[0].W = bad.Steps[0].W[:1]
	if _, err := e.Replay(bad, ReplayOptions{}); err == nil {
		t.Error("replay accepted an invalid trace")
	}
	if _, err := e.Replay(tr, ReplayOptions{Policy: "sometimes"}); !errors.Is(err, ErrUnknownPolicy) {
		t.Errorf("unknown replay policy: %v", err)
	}
	if _, err := e.Replay(tr, ReplayOptions{Policy: PolicyDRL}); !errors.Is(err, ErrUnknownPolicy) {
		t.Errorf("DRL replay on an untrained engine: %v", err)
	}
}

// TestPackageReplayRebuildsEngine exercises the fingerprint path end to
// end: package-level Replay must rebuild an equivalent engine from the
// trace alone and still reproduce the episode byte-identically.
func TestPackageReplayRebuildsEngine(t *testing.T) {
	tr, _, _ := tracedEpisode(t, 34, 15)
	rep, err := Replay(tr, ReplayOptions{Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Diff.Identical {
		t.Errorf("rebuilt-engine replay diverged: %+v", rep.Diff)
	}
	if rep.Audit == nil || !rep.Audit.Clean {
		t.Errorf("audit: %+v", rep.Audit)
	}
}

// TestFleetMemberTraceConformance: a fleet member's recording (unlimited
// budget, so the scheduler never sheds) replays byte-identically — the
// fleet capture path and the session path record the same episode.
func TestFleetMemberTraceConformance(t *testing.T) {
	e := accEngine(t)
	f, err := e.NewFleet(FleetConfig{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const steps = 12
	x0, w, err := e.DrawCase(35, steps)
	if err != nil {
		t.Fatal(err)
	}
	id, err := f.Admit(x0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < steps; i++ {
		if _, err := f.Tick(ctx, map[int][]float64{id: w[i]}); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := f.MemberTrace(id)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != steps {
		t.Fatalf("member trace has %d steps, want %d", tr.Len(), steps)
	}
	rep, err := e.Replay(tr, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Diff.Identical {
		t.Errorf("fleet member trace replay diverged: %+v", rep.Diff)
	}

	// Untraced fleets answer ErrNotTracing; unknown members their own
	// sentinel.
	f2, err := e.NewFleet(FleetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	id2, err := f2.Admit(x0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.MemberTrace(id2); !errors.Is(err, ErrNotTracing) {
		t.Errorf("untraced fleet MemberTrace: %v", err)
	}
	if _, err := f.MemberTrace(9999); !errors.Is(err, ErrUnknownMember) {
		t.Errorf("unknown member: %v", err)
	}

	// TraceLimit keeps a complete prefix without failing the tick.
	f3, err := e.NewFleet(FleetConfig{Trace: true, TraceLimit: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer f3.Close()
	id3, err := f3.Admit(x0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		if _, err := f3.Tick(ctx, map[int][]float64{id3: w[i]}); err != nil {
			t.Fatal(err)
		}
	}
	tr3, err := f3.MemberTrace(id3)
	if err != nil || tr3.Len() != 4 {
		t.Errorf("limited member trace: %v len %d, want 4", err, tr3.Len())
	}
}

// TestTraceMemoryEquivalence: the fingerprint stores the *resolved*
// disturbance window, so engines that are behaviorally identical —
// default memory vs an explicit Memory equal to the default — accept
// each other's traces and replay them byte-identically.
func TestTraceMemoryEquivalence(t *testing.T) {
	tr, _, _ := tracedEpisode(t, 40, 10)
	e1, err := NewEngine(Config{Plant: "acc", Policy: PolicyAlwaysRun, Memory: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e1.Replay(tr, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Diff.Identical {
		t.Errorf("explicit-memory engine replay diverged: %+v", rep.Diff)
	}
}
