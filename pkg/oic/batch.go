package oic

import (
	"context"

	"oic/internal/sched"
)

// BatchStep is one unit of work for StepBatch: advance Session by one
// iteration under disturbance W (nil = zero disturbance).
type BatchStep struct {
	Session *Session
	W       []float64
}

// StepBatch advances many sessions concurrently across a bounded worker
// pool and returns one result per input, in input order. Failed steps
// carry the error in StepResult.Error (and a zero result otherwise);
// successful ones are identical to what Session.Step would have returned.
// Workers ≤ 0 means GOMAXPROCS. Duplicate sessions in one batch are legal
// — their steps serialize on the session mutex in an unspecified order —
// but batches of distinct sessions are the intended shape.
func (e *Engine) StepBatch(ctx context.Context, steps []BatchStep, workers int) []StepResult {
	out := make([]StepResult, len(steps))
	sched.FanOut(len(steps), workers, func(i int) {
		st := steps[i]
		if st.Session == nil {
			out[i].Error = "nil session"
			return
		}
		r, err := st.Session.Step(ctx, st.W)
		if err != nil {
			out[i] = StepResult{Error: err.Error()}
			return
		}
		out[i] = r
	})
	return out
}
