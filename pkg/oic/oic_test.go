package oic

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	_ "oic/internal/acc"
	_ "oic/internal/orbit"
	_ "oic/internal/thermo"
)

// accEngine builds (once per test binary) the shared ACC engine with the
// always-run policy, so every step exercises the RMPC's compiled-LP hot
// path — the worst case for workspace sharing bugs.
var accEngineOnce struct {
	sync.Once
	eng *Engine
	err error
}

func accEngine(t testing.TB) *Engine {
	t.Helper()
	accEngineOnce.Do(func() {
		accEngineOnce.eng, accEngineOnce.err = NewEngine(Config{Plant: "acc", Policy: PolicyAlwaysRun})
	})
	if accEngineOnce.err != nil {
		t.Fatal(accEngineOnce.err)
	}
	return accEngineOnce.eng
}

// trajectory runs one fresh session over (x0, w) and returns the step
// results.
func trajectory(t testing.TB, e *Engine, x0 []float64, w [][]float64) []StepResult {
	t.Helper()
	s, err := e.NewSession(x0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	out, err := s.StepMany(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func sameResults(a, b []StepResult) error {
	if len(a) != len(b) {
		return fmt.Errorf("length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].T != b[i].T || a[i].Level != b[i].Level || a[i].Ran != b[i].Ran || a[i].Forced != b[i].Forced {
			return fmt.Errorf("step %d: decision %+v vs %+v", i, a[i], b[i])
		}
		for j := range a[i].U {
			if a[i].U[j] != b[i].U[j] {
				return fmt.Errorf("step %d: u[%d] %v vs %v", i, j, a[i].U[j], b[i].U[j])
			}
		}
		for j := range a[i].X {
			if a[i].X[j] != b[i].X[j] {
				return fmt.Errorf("step %d: x[%d] %v vs %v", i, j, a[i].X[j], b[i].X[j])
			}
		}
	}
	return nil
}

func TestEngineLookupErrors(t *testing.T) {
	if _, err := NewEngine(Config{Plant: "nope"}); !errors.Is(err, ErrUnknownPlant) {
		t.Errorf("unknown plant: %v", err)
	}
	if _, err := NewEngine(Config{Plant: "acc", Scenario: "Ex.99"}); !errors.Is(err, ErrUnknownScenario) {
		t.Errorf("unknown scenario: %v", err)
	}
	if _, err := NewEngine(Config{Plant: "acc", Policy: "sometimes"}); !errors.Is(err, ErrUnknownPolicy) {
		t.Errorf("unknown policy: %v", err)
	}
}

func TestSessionDimensionAndSafetyErrors(t *testing.T) {
	e := accEngine(t)
	if _, err := e.NewSession([]float64{1}); !errors.Is(err, ErrBadDimension) {
		t.Errorf("short x0: %v", err)
	}
	if _, err := e.NewSession([]float64{1e9, 1e9}); !errors.Is(err, ErrUnsafe) {
		t.Errorf("unsafe x0: %v", err)
	}
	x0s, err := e.SampleInitialStates(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.NewSession(x0s[0])
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Step(context.Background(), []float64{0}); !errors.Is(err, ErrBadDimension) {
		t.Errorf("short w: %v", err)
	}
	if lvl, err := e.Level(x0s[0]); err != nil || lvl != "X'" {
		t.Errorf("sampled initial state classifies as %q (err %v), want X'", lvl, err)
	}
	if _, err := e.Level([]float64{1}); !errors.Is(err, ErrBadDimension) {
		t.Errorf("short Level input: %v", err)
	}
	// An explicit Memory threads through DRL training, so the trained
	// window, the session framework, and the episode path all agree.
	drlEng, err := NewEngine(Config{Plant: "acc", Policy: PolicyDRL, Memory: 2,
		Train: TrainConfig{Episodes: 1, Steps: 5}})
	if err != nil {
		t.Fatalf("DRL engine with explicit memory: %v", err)
	}
	x0d, wd, err := drlEng.DrawCase(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := drlEng.RunEpisode("", x0d, wd); err != nil {
		t.Errorf("episode on memory-2 DRL engine: %v", err)
	}
	ds, err := drlEng.NewSession(x0d)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if _, err := ds.StepMany(context.Background(), wd); err != nil {
		t.Errorf("session on memory-2 DRL engine: %v", err)
	}
}

func TestSessionCloseSemantics(t *testing.T) {
	e := accEngine(t)
	x0, w, err := e.DrawCase(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.NewSession(x0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.StepMany(context.Background(), w); err != nil {
		t.Fatal(err)
	}
	preClose := s.Info()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("Close not idempotent:", err)
	}
	if _, err := s.Step(context.Background(), nil); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("step after close: %v", err)
	}
	post := s.Info()
	if !post.Closed || post.T != preClose.T || post.Energy != preClose.Energy {
		t.Errorf("post-close info %+v does not preserve pre-close snapshot %+v", post, preClose)
	}
	// The recycled workspace must not leak into the closed session's view.
	s2, err := e.NewSession(x0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s.Info().T != preClose.T {
		t.Error("closed session info changed after workspace reuse")
	}
}

// TestPooledSessionByteIdentical is the pooling determinism contract: a
// session running on a recycled workspace (warm-start state reset to
// cold) must reproduce a fresh session's trajectory to the last bit, even
// after the workspace was polluted by a different episode.
func TestPooledSessionByteIdentical(t *testing.T) {
	e := accEngine(t)
	x0, w, err := e.DrawCase(11, 30)
	if err != nil {
		t.Fatal(err)
	}
	ref := trajectory(t, e, x0, w) // fresh workspace (pool empty)

	// Pollute the pooled workspace with a different episode, then rerun
	// the reference episode on the recycled workspace.
	x1, w1, err := e.DrawCase(12, 17)
	if err != nil {
		t.Fatal(err)
	}
	_ = trajectory(t, e, x1, w1)
	got := trajectory(t, e, x0, w)
	if err := sameResults(ref, got); err != nil {
		t.Fatalf("pooled session diverged from fresh session: %v", err)
	}
}

// TestConcurrentSessionsByteIdentical hammers one shared engine from many
// goroutines (run with -race): every client's trajectory must be
// byte-identical to the single-threaded reference for its case.
func TestConcurrentSessionsByteIdentical(t *testing.T) {
	e := accEngine(t)
	const clients, steps, rounds = 8, 20, 3

	type episode struct {
		x0  []float64
		w   [][]float64
		ref []StepResult
	}
	eps := make([]episode, clients)
	for i := range eps {
		x0, w, err := e.DrawCase(int64(100+i), steps)
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = episode{x0: x0, w: w, ref: trajectory(t, e, x0, w)}
	}

	var wg sync.WaitGroup
	errc := make(chan error, clients*rounds)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(ep episode) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				s, err := e.NewSession(ep.x0)
				if err != nil {
					errc <- err
					return
				}
				got, err := s.StepMany(context.Background(), ep.w)
				s.Close()
				if err != nil {
					errc <- err
					return
				}
				if err := sameResults(ep.ref, got); err != nil {
					errc <- fmt.Errorf("round %d: %w", r, err)
					return
				}
			}
		}(eps[i])
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestStepBatch advances many sessions through the worker pool and checks
// each against its sequential twin, plus per-item error reporting.
func TestStepBatch(t *testing.T) {
	e := accEngine(t)
	const n, steps = 6, 10

	batch := make([]*Session, n)
	seq := make([]*Session, n)
	cases := make([]struct {
		w [][]float64
	}, n)
	for i := 0; i < n; i++ {
		x0, w, err := e.DrawCase(int64(200+i), steps)
		if err != nil {
			t.Fatal(err)
		}
		cases[i].w = w
		if batch[i], err = e.NewSession(x0); err != nil {
			t.Fatal(err)
		}
		if seq[i], err = e.NewSession(x0); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		for i := 0; i < n; i++ {
			batch[i].Close()
			seq[i].Close()
		}
	}()

	for st := 0; st < steps; st++ {
		items := make([]BatchStep, n)
		for i := 0; i < n; i++ {
			items[i] = BatchStep{Session: batch[i], W: cases[i].w[st]}
		}
		got := e.StepBatch(context.Background(), items, 0)
		for i := 0; i < n; i++ {
			if got[i].Error != "" {
				t.Fatalf("step %d session %d: %s", st, i, got[i].Error)
			}
			want, err := seq[i].Step(context.Background(), cases[i].w[st])
			if err != nil {
				t.Fatal(err)
			}
			if err := sameResults([]StepResult{want}, []StepResult{got[i]}); err != nil {
				t.Fatalf("batch vs sequential, session %d: %v", i, err)
			}
		}
	}

	// Per-item errors: a closed session in the batch fails alone.
	batch[0].Close()
	items := []BatchStep{
		{Session: batch[0]},
		{Session: batch[1]},
		{Session: nil},
	}
	got := e.StepBatch(context.Background(), items, 2)
	if got[0].Error == "" || got[2].Error == "" {
		t.Errorf("expected per-item errors, got %+v", got)
	}
	if got[1].Error != "" {
		t.Errorf("healthy session failed in mixed batch: %s", got[1].Error)
	}
}

// TestRunEpisodeMatchesSessionPath cross-checks the two facade execution
// paths: RunEpisode (the experiment pipeline's) and session stepping (the
// server's) must agree on every decision and counter.
func TestRunEpisodeMatchesSessionPath(t *testing.T) {
	e := accEngine(t)
	x0, w, err := e.DrawCase(42, 25)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := e.RunEpisode(PolicyAlwaysRun, x0, w)
	if err != nil {
		t.Fatal(err)
	}
	res := trajectory(t, e, x0, w)
	var runs, skips int
	for _, r := range res {
		if r.Ran {
			runs++
		} else {
			skips++
		}
	}
	if runs != ep.Runs || skips != ep.Skips {
		t.Errorf("session path runs/skips %d/%d vs episode %d/%d", runs, skips, ep.Runs, ep.Skips)
	}
	if ep.Violations != 0 {
		t.Errorf("violations: %d", ep.Violations)
	}
}

func TestPlantsCatalog(t *testing.T) {
	infos := Plants()
	if len(infos) < 3 {
		t.Fatalf("expected ≥3 registered plants, got %d", len(infos))
	}
	seen := map[string]bool{}
	for _, p := range infos {
		seen[p.Name] = true
		if p.Headline.ID == "" {
			t.Errorf("plant %s has no headline scenario", p.Name)
		}
	}
	for _, want := range []string{"acc", "thermo", "orbit"} {
		if !seen[want] {
			t.Errorf("catalog missing %s", want)
		}
	}
}
