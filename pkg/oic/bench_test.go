package oic

import (
	"context"
	"runtime"
	"testing"
	"time"

	"oic/internal/journal"
	"oic/internal/obs"
)

// BenchmarkSessionStep measures one facade step on the RMPC hot path
// (always-run, warm resolves after the first step) — the per-request cost
// floor of the oicd server before HTTP overhead.
func BenchmarkSessionStep(b *testing.B) {
	e := accEngine(b)
	x0, w, err := e.DrawCase(1, 1)
	if err != nil {
		b.Fatal(err)
	}
	s, err := e.NewSession(x0)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Step(ctx, w[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionStepInstrumented is BenchmarkSessionStep plus exactly
// the observability the oicd server adds per step: one latency-histogram
// Observe, mirroring internal/server's observeSteps. The CI gate holds
// ns/op here within 1.05× of the bare BenchmarkSessionStep, pinning the
// instrumentation tax near zero.
func BenchmarkSessionStepInstrumented(b *testing.B) {
	e := accEngine(b)
	x0, w, err := e.DrawCase(1, 1)
	if err != nil {
		b.Fatal(err)
	}
	s, err := e.NewSession(x0)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	hist := obs.NewHistogram("bench_step_seconds", "instrumented step latency", obs.LatencyBuckets())
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := s.Step(ctx, w[0]); err != nil {
			b.Fatal(err)
		}
		hist.Observe(time.Since(start).Seconds())
	}
	b.StopTimer()
	if got := hist.Count(); got != uint64(b.N) {
		b.Fatalf("histogram count %d, want %d", got, b.N)
	}
}

// BenchmarkStepBatch measures advancing a fleet of pooled sessions one
// step through the worker pool — the server's batched-stepping throughput
// shape. Reported per session-step (64 per iteration).
func BenchmarkStepBatch(b *testing.B) {
	e := accEngine(b)
	const fleet = 64
	items := make([]BatchStep, fleet)
	for i := range items {
		x0, w, err := e.DrawCase(int64(i+1), 1)
		if err != nil {
			b.Fatal(err)
		}
		s, err := e.NewSession(x0)
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		items[i] = BatchStep{Session: s, W: w[0]}
	}
	ctx := context.Background()
	workers := runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := e.StepBatch(ctx, items, workers)
		for j := range res {
			if res[j].Error != "" {
				b.Fatal(res[j].Error)
			}
		}
	}
	b.StopTimer()
	perStep := float64(b.Elapsed().Nanoseconds()) / float64(b.N*fleet)
	b.ReportMetric(perStep, "ns/session-step")
}

// BenchmarkFleetTick is the acceptance benchmark of the opportunistic
// fleet scheduler: 1000 ACC sessions advance one control period per
// iteration on a budget sized for fewer than 100 worst-case κ computes
// per tick. The engine runs the always-run policy — every session
// requests κ every tick, the worst case for the scheduler — so the
// budget's priority queue does all the work: the ~96 most urgent sessions
// (lowest remaining S_k budget) compute, the rest shed into safe skips.
// ns/op is the tick latency to compare against the plant's 100 ms control
// period; reclaimed-ratio is the fraction of worst-case κ provisioning
// the scheduler handed back.
func BenchmarkFleetTick(b *testing.B) {
	e := accEngine(b)
	const sessions, budget, traceLen = 1000, 96, 128
	f, err := e.NewFleet(FleetConfig{ComputeBudget: budget, MaxSessions: sessions})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	// Pre-draw a ring of per-tick disturbance maps so the measured loop
	// only schedules and steps.
	ids := make([]int, sessions)
	traces := make([][][]float64, sessions)
	for i := 0; i < sessions; i++ {
		x0, w, err := e.DrawCase(int64(i+1), traceLen)
		if err != nil {
			b.Fatal(err)
		}
		if ids[i], err = f.Admit(x0); err != nil {
			b.Fatal(err)
		}
		traces[i] = w
	}
	ring := make([]map[int][]float64, traceLen)
	for tk := 0; tk < traceLen; tk++ {
		ws := make(map[int][]float64, sessions)
		for i, id := range ids {
			ws[id] = traces[i][tk]
		}
		ring[tk] = ws
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := f.Tick(ctx, ring[i%traceLen])
		if err != nil {
			b.Fatal(err)
		}
		if rep.Violations != 0 {
			b.Fatalf("tick %d: %d safety violations", i, rep.Violations)
		}
	}
	b.StopTimer()
	st := f.Stats()
	b.ReportMetric(st.ReclaimedRatio, "reclaimed-ratio")
	b.ReportMetric(st.Utilization, "budget-utilization")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*sessions), "ns/session-step")
	if st.Violations != 0 {
		b.Fatalf("%d violations across %d ticks", st.Violations, st.Ticks)
	}
}

// BenchmarkFleetTickElastic is BenchmarkFleetTick with the elastic-budget
// controller in the loop: same 1000 ACC sessions, but every tick feeds
// its measured deadline margin through the internal/budget PI law and
// retunes the next tick's budget. The bounds are pinned Min = Max =
// budget so both benchmarks schedule identical work and the ratio
// prices exactly the regulation tax — Controller.Update plus the
// admission-coupling recompute, O(1) arithmetic per tick — which the
// CI gate holds within 1.05× of BenchmarkFleetTick.
func BenchmarkFleetTickElastic(b *testing.B) {
	e := accEngine(b)
	const sessions, budget, traceLen = 1000, 96, 128
	f, err := e.NewFleet(FleetConfig{
		ComputeBudget: budget,
		MaxSessions:   sessions,
		TickDeadline:  100 * time.Millisecond,
		Elastic:       &ElasticConfig{MinBudget: budget, MaxBudget: budget},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	ids := make([]int, sessions)
	traces := make([][][]float64, sessions)
	for i := 0; i < sessions; i++ {
		x0, w, err := e.DrawCase(int64(i+1), traceLen)
		if err != nil {
			b.Fatal(err)
		}
		if ids[i], err = f.Admit(x0); err != nil {
			b.Fatal(err)
		}
		traces[i] = w
	}
	ring := make([]map[int][]float64, traceLen)
	for tk := 0; tk < traceLen; tk++ {
		ws := make(map[int][]float64, sessions)
		for i, id := range ids {
			ws[id] = traces[i][tk]
		}
		ring[tk] = ws
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := f.Tick(ctx, ring[i%traceLen])
		if err != nil {
			b.Fatal(err)
		}
		if rep.Violations != 0 {
			b.Fatalf("tick %d: %d safety violations", i, rep.Violations)
		}
	}
	b.StopTimer()
	st := f.Stats()
	b.ReportMetric(st.ReclaimedRatio, "reclaimed-ratio")
	b.ReportMetric(float64(st.Budget), "final-budget")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*sessions), "ns/session-step")
	if st.Violations != 0 {
		b.Fatalf("%d violations across %d ticks", st.Violations, st.Ticks)
	}
}

// BenchmarkFleetTickJournaled is BenchmarkFleetTick with oicd's crash
// journaling on at the production fleet policy (sync=tick): every member
// step appends a TypeFleetStep record through the fleet step hook and
// each tick ends with one fsync, exactly what the server does per tick
// request under -journal-dir. The CI gate holds ns/op here within 1.15×
// of the unjournaled BenchmarkFleetTick, pinning the durability tax.
func BenchmarkFleetTickJournaled(b *testing.B) {
	e := accEngine(b)
	const sessions, budget, traceLen = 1000, 96, 128
	f, err := e.NewFleet(FleetConfig{ComputeBudget: budget, MaxSessions: sessions})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	jw, err := journal.OpenWriter(journal.Options{Dir: b.TempDir(), Policy: journal.SyncEveryTick})
	if err != nil {
		b.Fatal(err)
	}
	defer jw.Close()
	nx, nu := e.NX(), e.NU()
	f.SetStepHook(func(member int, ev StepEvent) {
		rec := journal.Record{
			Type: journal.TypeFleetStep, ID: "f-bench", Member: uint32(member), NX: nx, NU: nu,
			Ran: ev.Ran, Forced: ev.Forced, Level: ev.Level,
			W: ev.W, U: ev.U, X: ev.X,
		}
		if err := jw.Append(&rec); err != nil {
			b.Error(err)
		}
	})
	ids := make([]int, sessions)
	traces := make([][][]float64, sessions)
	for i := 0; i < sessions; i++ {
		x0, w, err := e.DrawCase(int64(i+1), traceLen)
		if err != nil {
			b.Fatal(err)
		}
		if ids[i], err = f.Admit(x0); err != nil {
			b.Fatal(err)
		}
		traces[i] = w
	}
	ring := make([]map[int][]float64, traceLen)
	for tk := 0; tk < traceLen; tk++ {
		ws := make(map[int][]float64, sessions)
		for i, id := range ids {
			ws[id] = traces[i][tk]
		}
		ring[tk] = ws
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := f.Tick(ctx, ring[i%traceLen])
		if err != nil {
			b.Fatal(err)
		}
		if rep.Violations != 0 {
			b.Fatalf("tick %d: %d safety violations", i, rep.Violations)
		}
		if err := jw.Sync(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := jw.Stats()
	b.ReportMetric(float64(st.Appends)/float64(b.N), "journal-appends/tick")
	b.ReportMetric(float64(st.Bytes)/float64(int64(b.N)*sessions), "journal-bytes/session-step")
}

// BenchmarkTraceRecord measures the per-step cost of episode recording on
// the skip-heavy hot path (bang-bang policy): a traced facade step is the
// untraced one plus one flag byte and three bounded arena appends. The
// session is recycled every 4 Ki steps so the recording (not the episode
// length) is what's measured.
func BenchmarkTraceRecord(b *testing.B) {
	e, err := NewEngine(Config{Plant: "acc", Policy: PolicyBangBang})
	if err != nil {
		b.Fatal(err)
	}
	x0, w, err := e.DrawCase(1, 1)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	var s *Session
	open := func() {
		var err error
		if s, err = e.NewSession(x0); err != nil {
			b.Fatal(err)
		}
		if err := s.StartTrace(0); err != nil {
			b.Fatal(err)
		}
	}
	open()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%4096 == 0 {
			b.StopTimer()
			s.Close()
			open()
			b.StartTimer()
		}
		if _, err := s.Step(ctx, w[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplay measures replay throughput: one 128-step always-run ACC
// episode (κ solves at every step — the worst case; skip-heavy logs
// replay orders of magnitude faster) re-executed and diffed per
// iteration. steps/s is the replay-service throughput number.
func BenchmarkReplay(b *testing.B) {
	e := accEngine(b)
	const steps = 128
	x0, w, err := e.DrawCase(1, steps)
	if err != nil {
		b.Fatal(err)
	}
	s, err := e.NewSession(x0)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.StartTrace(0); err != nil {
		b.Fatal(err)
	}
	if _, err := s.StepMany(context.Background(), w); err != nil {
		b.Fatal(err)
	}
	tr, err := s.Trace()
	if err != nil {
		b.Fatal(err)
	}
	s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := e.Replay(tr, ReplayOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Diff.Identical {
			b.Fatal("replay diverged")
		}
	}
	b.StopTimer()
	perStep := float64(b.Elapsed().Nanoseconds()) / float64(b.N*steps)
	b.ReportMetric(perStep, "ns/step")
	b.ReportMetric(1e9/perStep, "steps/s")
}

// BenchmarkFleetAdmission measures the admission-control path: XI
// membership check plus a pooled-workspace acquire/release cycle.
func BenchmarkFleetAdmission(b *testing.B) {
	e := accEngine(b)
	f, err := e.NewFleet(FleetConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	x0, _, err := e.DrawCase(1, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := f.Admit(x0)
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Evict(id); err != nil {
			b.Fatal(err)
		}
	}
}
