package oic

import (
	"context"
	"runtime"
	"testing"
)

// BenchmarkSessionStep measures one facade step on the RMPC hot path
// (always-run, warm resolves after the first step) — the per-request cost
// floor of the oicd server before HTTP overhead.
func BenchmarkSessionStep(b *testing.B) {
	e := accEngine(b)
	x0, w, err := e.DrawCase(1, 1)
	if err != nil {
		b.Fatal(err)
	}
	s, err := e.NewSession(x0)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Step(ctx, w[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStepBatch measures advancing a fleet of pooled sessions one
// step through the worker pool — the server's batched-stepping throughput
// shape. Reported per session-step (64 per iteration).
func BenchmarkStepBatch(b *testing.B) {
	e := accEngine(b)
	const fleet = 64
	items := make([]BatchStep, fleet)
	for i := range items {
		x0, w, err := e.DrawCase(int64(i+1), 1)
		if err != nil {
			b.Fatal(err)
		}
		s, err := e.NewSession(x0)
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		items[i] = BatchStep{Session: s, W: w[0]}
	}
	ctx := context.Background()
	workers := runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := e.StepBatch(ctx, items, workers)
		for j := range res {
			if res[j].Error != "" {
				b.Fatal(res[j].Error)
			}
		}
	}
	b.StopTimer()
	perStep := float64(b.Elapsed().Nanoseconds()) / float64(b.N*fleet)
	b.ReportMetric(perStep, "ns/session-step")
}
