package oic

import (
	"context"
	"runtime"
	"testing"
)

// BenchmarkSessionStep measures one facade step on the RMPC hot path
// (always-run, warm resolves after the first step) — the per-request cost
// floor of the oicd server before HTTP overhead.
func BenchmarkSessionStep(b *testing.B) {
	e := accEngine(b)
	x0, w, err := e.DrawCase(1, 1)
	if err != nil {
		b.Fatal(err)
	}
	s, err := e.NewSession(x0)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Step(ctx, w[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStepBatch measures advancing a fleet of pooled sessions one
// step through the worker pool — the server's batched-stepping throughput
// shape. Reported per session-step (64 per iteration).
func BenchmarkStepBatch(b *testing.B) {
	e := accEngine(b)
	const fleet = 64
	items := make([]BatchStep, fleet)
	for i := range items {
		x0, w, err := e.DrawCase(int64(i+1), 1)
		if err != nil {
			b.Fatal(err)
		}
		s, err := e.NewSession(x0)
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		items[i] = BatchStep{Session: s, W: w[0]}
	}
	ctx := context.Background()
	workers := runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := e.StepBatch(ctx, items, workers)
		for j := range res {
			if res[j].Error != "" {
				b.Fatal(res[j].Error)
			}
		}
	}
	b.StopTimer()
	perStep := float64(b.Elapsed().Nanoseconds()) / float64(b.N*fleet)
	b.ReportMetric(perStep, "ns/session-step")
}

// BenchmarkFleetTick is the acceptance benchmark of the opportunistic
// fleet scheduler: 1000 ACC sessions advance one control period per
// iteration on a budget sized for fewer than 100 worst-case κ computes
// per tick. The engine runs the always-run policy — every session
// requests κ every tick, the worst case for the scheduler — so the
// budget's priority queue does all the work: the ~96 most urgent sessions
// (lowest remaining S_k budget) compute, the rest shed into safe skips.
// ns/op is the tick latency to compare against the plant's 100 ms control
// period; reclaimed-ratio is the fraction of worst-case κ provisioning
// the scheduler handed back.
func BenchmarkFleetTick(b *testing.B) {
	e := accEngine(b)
	const sessions, budget, traceLen = 1000, 96, 128
	f, err := e.NewFleet(FleetConfig{ComputeBudget: budget, MaxSessions: sessions})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	// Pre-draw a ring of per-tick disturbance maps so the measured loop
	// only schedules and steps.
	ids := make([]int, sessions)
	traces := make([][][]float64, sessions)
	for i := 0; i < sessions; i++ {
		x0, w, err := e.DrawCase(int64(i+1), traceLen)
		if err != nil {
			b.Fatal(err)
		}
		if ids[i], err = f.Admit(x0); err != nil {
			b.Fatal(err)
		}
		traces[i] = w
	}
	ring := make([]map[int][]float64, traceLen)
	for tk := 0; tk < traceLen; tk++ {
		ws := make(map[int][]float64, sessions)
		for i, id := range ids {
			ws[id] = traces[i][tk]
		}
		ring[tk] = ws
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := f.Tick(ctx, ring[i%traceLen])
		if err != nil {
			b.Fatal(err)
		}
		if rep.Violations != 0 {
			b.Fatalf("tick %d: %d safety violations", i, rep.Violations)
		}
	}
	b.StopTimer()
	st := f.Stats()
	b.ReportMetric(st.ReclaimedRatio, "reclaimed-ratio")
	b.ReportMetric(st.Utilization, "budget-utilization")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*sessions), "ns/session-step")
	if st.Violations != 0 {
		b.Fatalf("%d violations across %d ticks", st.Violations, st.Ticks)
	}
}

// BenchmarkFleetAdmission measures the admission-control path: XI
// membership check plus a pooled-workspace acquire/release cycle.
func BenchmarkFleetAdmission(b *testing.B) {
	e := accEngine(b)
	f, err := e.NewFleet(FleetConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	x0, _, err := e.DrawCase(1, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := f.Admit(x0)
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Evict(id); err != nil {
			b.Fatal(err)
		}
	}
}
