package oic

// Crash-safe durability facade (DESIGN.md §10): the step-event hooks the
// oicd server uses to write-ahead journal every executed step, and the
// resume-to-head path that folds a recovered episode back into a live
// session. Recovery is a *verified* replay — every replayed step must
// reproduce the recorded input and successor bit-for-bit, because the
// whole stack (LP warm-start chain included) is deterministic. A journal
// that replays clean proves the recovered session is byte-identical to
// one that never crashed; one that diverges fails with ErrResumeMismatch
// rather than serving silently-wrong state.

import (
	"fmt"
	"math"

	"oic/internal/core"
	"oic/internal/mat"
	"oic/internal/trace"
)

// StepEvent is the journaling-facing view of one executed step — exactly
// the payload a write-ahead journal must persist to replay it. The slices
// are views into runtime buffers, valid only for the duration of the hook
// call: a hook that retains them must copy (journal writers encode into
// their own buffer, so the hot path stays allocation-free).
type StepEvent struct {
	T      int       // step index (0-based)
	Ran    bool      // effective z(t): κ computed and applied
	Forced bool      // monitor overrode the policy (x ∉ X′)
	Level  uint8     // core.Level code of the pre-step state
	W      []float64 // realized disturbance
	U      []float64 // applied input (zeros when skipped)
	X      []float64 // successor state
}

// SetStepHook installs fn (nil clears) to be called synchronously after
// every successful step, before the step's result is returned — the
// write-ahead ordering a durability journal needs. The hook runs under
// the session lock; it must not call back into the session.
func (s *Session) SetStepHook(fn func(StepEvent)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hook = fn
}

// SetStepHook installs fn (nil clears) to be called synchronously after
// every successful member step with the member's fleet ID. Steps within
// a tick execute on a worker pool, so fn must be safe for concurrent
// calls; events are per-member ordered (a member steps once per tick)
// and each event is delivered before its tick completes.
func (f *Fleet) SetStepHook(fn func(member int, ev StepEvent)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hook = fn
}

// SetDegrade toggles graceful degradation on the session: a κ failure at
// a state the monitor did not force (x ∈ X′, so the zero-input skip is
// certified safe by Theorem 1) downgrades to that skip — counted in
// SessionInfo.Degraded — instead of closing the session. Forced-compute
// failures stay terminal regardless. No-op on a closed session.
func (s *Session) SetDegrade(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.cs.SetDegrade(on)
}

// ResumeOptions tunes ResumeSession.
type ResumeOptions struct {
	// Trace re-arms episode recording on the resumed session, seeded with
	// the replayed prefix, so trace reads keep serving the whole episode
	// across a crash. TraceLimit mirrors StartTrace's limit (0 unlimited);
	// a prefix already at the limit leaves the session refusing further
	// steps with ErrTraceLimit, same as before the crash.
	Trace      bool
	TraceLimit int
}

// ResumeSession rebuilds a live session positioned at the head of a
// recorded episode: the trace must fingerprint this engine, and every
// recorded step is replayed with its recorded decision and verified to
// reproduce the recorded input and successor exactly (Float64bits
// equality). On any divergence the workspace is recycled and
// ErrResumeMismatch returned.
func (e *Engine) ResumeSession(t *Trace, opts ResumeOptions) (*Session, error) {
	cs, err := e.resumeCore(t)
	if err != nil {
		return nil, err
	}
	s := &Session{eng: e, cs: cs}
	if opts.Trace {
		s.rec = e.resumeRecorder(t, opts.TraceLimit)
	}
	return s, nil
}

// ResumeMember re-admits one recovered member under its pre-crash fleet
// ID, replaying its episode to head with the same verification as
// ResumeSession. IDs must arrive in ascending order and above any ID the
// fleet has already issued — recovery admits members sorted by ID, and
// the fleet's ID counter advances past each so post-recovery admissions
// never collide. Admission control (capacity, not backpressure — the
// members existed before the crash) still applies.
func (f *Fleet) ResumeMember(id int, t *Trace) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrFleetClosed
	}
	if id < f.nextID {
		return fmt.Errorf("%w: member ID %d already issued (next is %d)", ErrResumeMismatch, id, f.nextID)
	}
	if len(f.members) >= f.cfg.MaxSessions {
		f.stats.Rejected++
		return ErrFleetFull
	}
	cs, err := f.eng.resumeCore(t)
	if err != nil {
		return err
	}
	if f.cfg.Degrade {
		cs.SetDegrade(true)
	}
	m := &fleetMember{f: f, id: id, cs: cs, w: make(mat.Vec, f.eng.NX())}
	if f.cfg.Trace {
		m.rec = f.eng.resumeRecorder(t, f.cfg.TraceLimit)
	}
	f.byID[id] = len(f.members)
	f.members = append(f.members, m)
	f.roster = append(f.roster, m)
	f.nextID = id + 1
	f.stats.Admitted++
	return nil
}

// ReserveMemberIDs advances the fleet's member-ID counter to at least
// next. Recovery calls it after resuming a fleet whose journal shows
// evicted members with IDs above every live one — those IDs were issued
// before the crash and must never be reissued, or the journal's history
// for the fleet would alias two members.
func (f *Fleet) ReserveMemberIDs(next int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if next > f.nextID {
		f.nextID = next
	}
}

// resumeCore replays a recorded episode to its head on a pooled
// workspace, verifying each step bit-for-bit against the record.
func (e *Engine) resumeCore(t *Trace) (*core.Session, error) {
	if err := e.checkTrace(t); err != nil {
		return nil, err
	}
	cs, err := e.acquireCore(t.X0)
	if err != nil {
		return nil, err
	}
	for i := range t.Steps {
		st := &t.Steps[i]
		r, err := cs.StepWithChoice(mat.Vec(st.W), st.Ran)
		if err != nil {
			e.releaseCore(cs)
			return nil, fmt.Errorf("oic: resume step %d: %w", i, err)
		}
		if r.Ran != st.Ran || !bitsEqual(r.U, st.U) || !bitsEqual(r.Next, st.X) {
			e.releaseCore(cs)
			return nil, fmt.Errorf("%w: step %d", ErrResumeMismatch, i)
		}
	}
	return cs, nil
}

// resumeRecorder rebuilds an episode recorder already holding the
// replayed prefix, so the resumed session's trace is the uninterrupted
// episode. Appends beyond a positive limit are dropped by the recorder
// itself (it reports Full), matching the pre-crash behavior.
func (e *Engine) resumeRecorder(t *Trace, limit int) *trace.Recorder {
	rec := trace.NewRecorder(e.traceMeta(), t.X0, e.NU(), limit)
	for i := range t.Steps {
		st := &t.Steps[i]
		_ = rec.Append(st.Ran, st.Forced, st.Level, st.W, st.U, st.X)
	}
	return rec
}

// bitsEqual is exact float equality (IEEE-754 bit patterns): recovery
// conformance admits no tolerance — the stack is deterministic.
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
