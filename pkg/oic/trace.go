package oic

import (
	"fmt"

	"oic/internal/trace"
)

// Trace is the recorded-episode wire format (DESIGN.md §8): the engine
// fingerprint plus, per step, the realized disturbance, the skip/run
// decision, the applied input, and the successor state. The alias makes
// internal/trace's canonical types part of the public facade without a
// parallel copy: EncodeTrace/DecodeTrace are the binary codec, and the
// struct marshals to the JSON shape the oicd trace/replay endpoints speak.
type Trace = trace.Trace

// TraceMeta is a trace's engine-configuration fingerprint.
type TraceMeta = trace.Meta

// TraceStep is one recorded control step.
type TraceStep = trace.Step

// TraceDiff summarizes how a replayed episode differs from the recorded
// one (see ReplayReport).
type TraceDiff = trace.Diff

// EncodeTrace serializes a trace into the canonical binary form
// (Encode(DecodeTrace(b)) == b for every valid b).
func EncodeTrace(t *Trace) ([]byte, error) { return trace.Encode(t) }

// DecodeTrace parses a canonical binary trace, rejecting malformed input
// (bad magic/version, dimension and length inconsistencies, checksum
// failures) without unbounded allocation.
func DecodeTrace(b []byte) (*Trace, error) { return trace.Decode(b) }

// traceMeta returns the engine's trace fingerprint: exactly the Config
// needed to rebuild this engine (ConfigFromTrace inverts it). The
// scenario and the disturbance memory are stored resolved — the concrete
// ID and window, never the "default" shorthands — so the fingerprint
// survives default changes and equivalent engines fingerprint equally.
func (e *Engine) traceMeta() trace.Meta {
	return trace.Meta{
		Plant:         e.cfg.Plant,
		Scenario:      e.ScenarioID(),
		Policy:        e.cfg.Policy,
		Memory:        e.memory,
		TrainEpisodes: e.cfg.Train.Episodes,
		TrainSteps:    e.cfg.Train.Steps,
		TrainSeed:     e.cfg.Train.Seed,
	}
}

// TraceMeta returns the engine's configuration fingerprint as trace
// metadata — the identity a durability journal stores with every opened
// session so crash recovery can rebuild the exact engine
// (NewEngine(ConfigFromTrace) or an artifact-store hit).
func (e *Engine) TraceMeta() TraceMeta { return e.traceMeta() }

// ConfigFromTrace inverts a trace's fingerprint into the engine
// configuration that recorded it — NewEngine(ConfigFromTrace(t)) rebuilds
// the same compiled artifacts (including retraining an identical DRL
// policy, since the training budget and seed are part of the fingerprint).
func ConfigFromTrace(t *Trace) Config {
	return Config{
		Plant:    t.Meta.Plant,
		Scenario: t.Meta.Scenario,
		Policy:   t.Meta.Policy,
		Memory:   t.Meta.Memory,
		Train: TrainConfig{
			Episodes: t.Meta.TrainEpisodes,
			Steps:    t.Meta.TrainSteps,
			Seed:     t.Meta.TrainSeed,
		},
	}
}

// checkTrace validates a trace and verifies it fingerprints this engine's
// plant, scenario, dimensions, and disturbance-memory — the preconditions
// for replaying it here.
func (e *Engine) checkTrace(t *Trace) error {
	if t == nil {
		return fmt.Errorf("%w: nil trace", ErrTraceMismatch)
	}
	if err := t.Validate(); err != nil {
		return err
	}
	if t.Meta.Plant != e.cfg.Plant || t.Meta.Scenario != e.ScenarioID() {
		return fmt.Errorf("%w: trace recorded on %s/%s, engine serves %s/%s",
			ErrTraceMismatch, t.Meta.Plant, t.Meta.Scenario, e.cfg.Plant, e.ScenarioID())
	}
	if t.NX != e.NX() || t.NU != e.NU() {
		return fmt.Errorf("%w: trace dims %d×%d, engine %d×%d",
			ErrTraceMismatch, t.NX, t.NU, e.NX(), e.NU())
	}
	if t.Meta.Memory != e.memory {
		return fmt.Errorf("%w: trace disturbance memory %d, engine %d",
			ErrTraceMismatch, t.Meta.Memory, e.memory)
	}
	return nil
}

// StartTrace begins recording this session's episode. It must be called
// before the first step (a mid-episode recording could not be replayed
// deterministically: the controller's warm-start chain depends on the
// whole episode), and is idempotent. limit caps the recorded steps — once
// reached, further Steps fail with ErrTraceLimit rather than silently
// truncating the record; 0 means unlimited (library use; servers cap).
//
// Tracing costs one bounded append per step; a session that never calls
// StartTrace pays a single nil check.
func (s *Session) StartTrace(limit int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	if s.rec != nil {
		return nil
	}
	if s.cs.Time() != 0 {
		return fmt.Errorf("oic: StartTrace: session already at t=%d; tracing must start before the first step", s.cs.Time())
	}
	s.rec = trace.NewRecorder(s.eng.traceMeta(), s.cs.StateView(), s.eng.NU(), limit)
	return nil
}

// Tracing reports whether the session records its episode.
func (s *Session) Tracing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec != nil
}

// Trace materializes the episode recorded so far. It keeps working after
// Close (the recording survives workspace recycling), and returns
// ErrNotTracing when StartTrace was never called.
func (s *Session) Trace() (*Trace, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rec == nil {
		return nil, ErrNotTracing
	}
	return s.rec.Trace(), nil
}
