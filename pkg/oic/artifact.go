package oic

import (
	"errors"
	"fmt"

	"oic/internal/artifact"
	"oic/internal/core"
	"oic/internal/nn"
	"oic/internal/plant"
	"oic/internal/reach"
	"oic/internal/rl"
)

// Artifact is the persisted form of a compiled engine (DESIGN.md §9):
// the safety-set polytopes, the S_k skip chain, the trained policy
// network with its normalization bounds, the training statistics, and
// the canonical config fingerprint. Engine.Artifact produces one;
// LoadEngine turns one back into a serving engine without recompiling
// sets or retraining, with byte-identical behavior.
type Artifact = artifact.Artifact

// ArtifactStore is the content-addressed on-disk artifact catalogue
// (key = config fingerprint + format version) with hit/miss/corrupt
// accounting.
type ArtifactStore = artifact.Store

// ArtifactStoreStats snapshots an ArtifactStore's counters.
type ArtifactStoreStats = artifact.StoreStats

// ErrArtifactMismatch reports an artifact whose contents are internally
// inconsistent with the engine it claims to reconstruct (wrong
// dimensions, missing policy for a DRL config, fingerprint mismatch).
var ErrArtifactMismatch = errors.New("oic: artifact does not match its configuration")

// ErrArtifactUnsupported reports a plant that cannot participate in the
// artifact pipeline (it does not implement set loading or policy
// restore).
var ErrArtifactUnsupported = errors.New("oic: plant does not support artifact loading")

// OpenArtifactStore opens (creating if needed) the artifact store rooted
// at dir.
func OpenArtifactStore(dir string) (*ArtifactStore, error) { return artifact.OpenStore(dir) }

// EncodeArtifact serializes an artifact into the canonical binary form
// (Encode(DecodeArtifact(b)) == b for every valid b).
func EncodeArtifact(a *Artifact) ([]byte, error) { return artifact.Encode(a) }

// DecodeArtifact parses a canonical binary artifact, rejecting malformed
// input (bad magic/version, dimension and length inconsistencies,
// checksum failures) without unbounded allocation.
func DecodeArtifact(b []byte) (*Artifact, error) { return artifact.Decode(b) }

// Canonical resolves the defaults NewEngine would apply, so semantically
// identical configurations compare (and fingerprint) equal: empty policy
// means bang-bang, empty scenario means the plant's headline, training
// parameters only matter for the DRL policy, and a memory equal to the
// untrained-policy default (or any non-positive value) folds to 0.
// Canonical is idempotent; an unknown plant leaves the scenario empty
// (NewEngine will reject it with a better error).
func (c Config) Canonical() Config {
	if c.Policy == "" {
		c.Policy = PolicyBangBang
	}
	if c.Policy != PolicyDRL {
		c.Train = TrainConfig{}
	}
	// Memory ≤ 0 and the explicit default are the same engine for every
	// policy: untrained policies resolve to DefaultMemory, and DRL
	// training folds Memory 0 → DefaultMemory before building the encoder.
	if c.Memory < 0 || c.Memory == plant.DefaultMemory {
		c.Memory = 0
	}
	if c.Scenario == "" {
		if p, err := plant.Get(c.Plant); err == nil {
			c.Scenario = p.Headline().ID
		}
	}
	return c
}

// Fingerprint returns the canonical engine identity string shared by the
// library, the oicd engine cache, and the artifact store: two configs
// with equal fingerprints build behaviorally identical engines.
func (c Config) Fingerprint() string {
	c = c.Canonical()
	return fmt.Sprintf("%s|%s|%s|m%d|e%d|s%d|seed%d",
		c.Plant, c.Scenario, c.Policy, c.Memory,
		c.Train.Episodes, c.Train.Steps, c.Train.Seed)
}

// ConfigFromArtifact inverts an artifact's fingerprint into the canonical
// engine configuration it was compiled from — LoadEngine(a) and
// NewEngine(ConfigFromArtifact(a)) produce behaviorally identical
// engines.
func ConfigFromArtifact(a *Artifact) Config {
	return Config{
		Plant:    a.Meta.Plant,
		Scenario: a.Meta.Scenario,
		Policy:   a.Meta.Policy,
		Memory:   a.Meta.Memory,
		Train: TrainConfig{
			Episodes: a.Meta.TrainEpisodes,
			Steps:    a.Meta.TrainSteps,
			Seed:     a.Meta.TrainSeed,
		},
	}
}

// Artifact serializes the engine's compiled state: the safety sets, the
// S_k chain (compiled on demand if the lazy oracle has not run yet), the
// trained policy snapshot for PolicyDRL, the training statistics, and
// the canonical config fingerprint. The returned artifact shares no
// mutable state with the engine and is safe to encode or store from any
// goroutine.
func (e *Engine) Artifact() (*Artifact, error) {
	sb, err := e.skipBudgetOracle()
	if err != nil {
		return nil, err
	}
	cfg := e.cfg.Canonical()
	sets := e.inst.Sets()
	a := &Artifact{
		Version: artifact.Version,
		NX:      e.NX(),
		NU:      e.NU(),
		Meta: artifact.Meta{
			Plant:         cfg.Plant,
			Scenario:      cfg.Scenario,
			Policy:        cfg.Policy,
			Memory:        cfg.Memory,
			TrainEpisodes: cfg.Train.Episodes,
			TrainSteps:    cfg.Train.Steps,
			TrainSeed:     cfg.Train.Seed,
		},
		Sets:  artifact.Sets{X: sets.X, XI: sets.XI, XPrime: sets.XPrime},
		Chain: sb.Sets(),
		Train: artifact.TrainStats{
			Episodes:      e.train.Episodes,
			TotalSteps:    e.train.TotalSteps,
			MeanReward:    e.train.MeanReward,
			RewardHistory: e.train.RewardHistory,
			FinalEpsilon:  e.train.FinalEpsilon,
			FinalLossEMA:  e.train.FinalLossEMA,
		},
	}
	if cfg.Policy == PolicyDRL {
		sp, ok := e.policy.(plant.SnapshottablePolicy)
		if !ok {
			return nil, fmt.Errorf("%w: %s's trained policy is not snapshottable", ErrArtifactUnsupported, cfg.Plant)
		}
		snap, err := sp.PolicySnapshot()
		if err != nil {
			return nil, fmt.Errorf("oic: snapshotting %s policy: %w", cfg.Plant, err)
		}
		a.Policy = &artifact.Policy{
			Label:   snap.Label,
			Memory:  snap.Memory,
			Sizes:   snap.Net.Sizes,
			Weights: snap.Net.Weights,
			Biases:  snap.Net.Biases,
			XCenter: snap.XCenter,
			XScale:  snap.XScale,
			WScale:  snap.WScale,
		}
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// LoadEngine reconstructs a serving engine from a persisted artifact,
// skipping the two expensive halves of NewEngine entirely: the safety
// sets come from the artifact instead of the invariant-set/feasible-set
// synthesis, and the skipping policy is restored from its snapshot
// instead of retrained. The loaded engine is byte-identical in behavior
// to the engine the artifact was taken from — identical decisions,
// states, and recorded traces — because every float64 it computes with
// (set halfspaces, network parameters, normalization bounds) round-trips
// exactly through the codec.
func LoadEngine(a *Artifact) (*Engine, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	cfg := ConfigFromArtifact(a)
	p, err := plant.Get(cfg.Plant)
	if err != nil {
		return nil, err
	}
	sc, err := plant.FindScenario(p, cfg.Scenario)
	if err != nil {
		return nil, err
	}
	sl, ok := p.(plant.SetsLoader)
	if !ok {
		return nil, fmt.Errorf("%w: %s cannot instantiate from precompiled sets", ErrArtifactUnsupported, cfg.Plant)
	}
	inst, err := sl.InstantiateWithSets(sc, core.SafetySets{X: a.Sets.X, XI: a.Sets.XI, XPrime: a.Sets.XPrime})
	if err != nil {
		return nil, err
	}
	if inst.System().NX() != a.NX || inst.System().NU() != a.NU {
		return nil, fmt.Errorf("%w: artifact dims %d×%d, plant %s is %d×%d",
			ErrArtifactMismatch, a.NX, a.NU, cfg.Plant, inst.System().NX(), inst.System().NU())
	}
	if len(a.Chain) > 0 {
		if err := reach.ValidateSkipChain(a.Chain, 1e-9); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrArtifactMismatch, err)
		}
	}
	e := &Engine{cfg: cfg, plant: p, scenario: sc, inst: inst}

	switch cfg.Policy {
	case PolicyAlwaysRun:
		e.policy = core.AlwaysRun{}
	case PolicyBangBang:
		e.policy = core.BangBang{}
	case PolicyDRL:
		if a.Policy == nil {
			return nil, fmt.Errorf("%w: DRL config but no policy snapshot", ErrArtifactMismatch)
		}
		pr, ok := inst.(plant.PolicyRestorer)
		if !ok {
			return nil, fmt.Errorf("%w: %s cannot restore a trained policy", ErrArtifactUnsupported, cfg.Plant)
		}
		pol, err := pr.RestoreSkipPolicy(&plant.PolicySnapshot{
			Label:  a.Policy.Label,
			Memory: a.Policy.Memory,
			Net: &nn.Snapshot{
				Sizes:   a.Policy.Sizes,
				Weights: a.Policy.Weights,
				Biases:  a.Policy.Biases,
			},
			XCenter: a.Policy.XCenter,
			XScale:  a.Policy.XScale,
			WScale:  a.Policy.WScale,
		})
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrArtifactMismatch, err)
		}
		e.policy = pol
		e.train = rl.TrainStats{
			Episodes:      a.Train.Episodes,
			TotalSteps:    a.Train.TotalSteps,
			MeanReward:    a.Train.MeanReward,
			RewardHistory: a.Train.RewardHistory,
			FinalEpsilon:  a.Train.FinalEpsilon,
			FinalLossEMA:  a.Train.FinalLossEMA,
		}
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownPolicy, cfg.Policy)
	}

	e.memory = cfg.Memory
	if e.memory <= 0 {
		e.memory = plant.PolicyMemory(e.policy)
	} else if mp, ok := e.policy.(plant.MemoryPolicy); ok && mp.PolicyMemory() > 0 && mp.PolicyMemory() != e.memory {
		return nil, fmt.Errorf("%w: config memory %d conflicts with the policy's trained window %d",
			ErrBadDimension, e.memory, mp.PolicyMemory())
	}
	fw, err := inst.Framework(e.policy, e.memory)
	if err != nil {
		return nil, err
	}
	e.fw = fw
	e.zeroW = make([]float64, inst.System().NX())

	// Prefill the lazy skip-budget oracle from the persisted chain so
	// SkipBudget and fleets never recompute it either.
	e.sbOnce.Do(func() { e.sb = reach.BudgetFromChain(a.Chain) })
	return e, nil
}
