package oic

import (
	"context"
	"fmt"
	"sync"

	"oic/internal/core"
	"oic/internal/mat"
	"oic/internal/trace"
)

// Session is one in-flight closed-loop run over an Engine. Sessions are
// cheap: the expensive solver workspace underneath is recycled through the
// engine's pool across Close/NewSession cycles, reset to its cold state on
// reuse so pooled and fresh sessions produce byte-identical trajectories.
//
// A Session serializes its own Step/Info/Close calls with an internal
// mutex, so one session may be shared across goroutines (steps interleave
// in lock order); different sessions never contend.
type Session struct {
	mu     sync.Mutex
	eng    *Engine
	cs     *core.Session
	rec    *trace.Recorder // episode recording; nil unless StartTrace was called
	hook   func(StepEvent) // write-ahead journaling hook; nil unless SetStepHook
	frozen bool            // migration handoff in progress; steps refuse
	closed bool
	final  SessionInfo // snapshot served after Close (the workspace is recycled)
}

// NewSession opens a session at x0, which must lie inside XI. The
// workspace comes from the engine's pool when one is available.
func (e *Engine) NewSession(x0 []float64) (*Session, error) {
	cs, err := e.acquireCore(x0)
	if err != nil {
		return nil, err
	}
	return &Session{eng: e, cs: cs}, nil
}

// Step advances the session one iteration of Algorithm 1 under the
// disturbance w (nil means zero disturbance) and returns the owned wire
// result. Sentinels: ErrSessionClosed after Close or a terminal failure,
// ErrBadDimension for a wrong-length w, ErrInfeasible when κ has no
// admissible input, and the context's error on cancellation.
func (s *Session) Step(ctx context.Context, w []float64) (StepResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stepLocked(ctx, w)
}

func (s *Session) stepLocked(ctx context.Context, w []float64) (StepResult, error) {
	if s.closed {
		return StepResult{}, ErrSessionClosed
	}
	if s.frozen {
		return StepResult{}, ErrSessionFrozen
	}
	if w == nil {
		w = s.eng.zeroW
	}
	if len(w) != s.eng.NX() {
		return StepResult{}, fmt.Errorf("%w: w has dim %d, want %d", ErrBadDimension, len(w), s.eng.NX())
	}
	if s.rec != nil && s.rec.Full() {
		// Refuse to step rather than silently truncate the recording: a
		// trace either covers its whole episode or the episode stops.
		return StepResult{}, fmt.Errorf("%w: %d steps", ErrTraceLimit, s.rec.Len())
	}
	rec, err := s.cs.StepContext(ctx, mat.Vec(w))
	if err != nil {
		return StepResult{}, err
	}
	if s.rec != nil {
		// rec carries views; the recorder copies into its arenas.
		_ = s.rec.Append(rec.Ran, rec.Forced, uint8(rec.Level), rec.W, rec.U, rec.Next)
	}
	if s.hook != nil {
		s.hook(StepEvent{
			T: rec.T, Ran: rec.Ran, Forced: rec.Forced, Level: uint8(rec.Level),
			W: rec.W, U: rec.U, X: rec.Next,
		})
	}
	// rec carries buffer views (recording is off); clone at the facade
	// boundary so the wire result is owned by the caller.
	return StepResult{
		T:      rec.T,
		Level:  rec.Level.String(),
		Ran:    rec.Ran,
		Forced: rec.Forced,
		U:      append([]float64(nil), rec.U...),
		X:      append([]float64(nil), rec.Next...),
	}, nil
}

// StepMany applies the disturbance sequence ws in order, stopping at the
// first failure; it returns the results of every executed step and the
// error that stopped the run, if any. The context is checked before each
// step.
func (s *Session) StepMany(ctx context.Context, ws [][]float64) ([]StepResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StepResult, 0, len(ws))
	for _, w := range ws {
		r, err := s.stepLocked(ctx, w)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// State returns an owned snapshot of the current state (the last state
// before Close for a closed session).
func (s *Session) State() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return append([]float64(nil), s.final.X...)
	}
	return append([]float64(nil), s.cs.StateView()...)
}

// Time returns the number of completed steps.
func (s *Session) Time() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.final.T
	}
	return s.cs.Time()
}

// Info returns a wire snapshot of the session (state cloned, counters
// copied). After Close it serves the final pre-close snapshot — the
// underlying workspace may already be running another session.
func (s *Session) Info() SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.infoLocked()
}

func (s *Session) infoLocked() SessionInfo {
	if s.closed {
		return s.final
	}
	res := s.cs.Result
	x := s.cs.StateView()
	return SessionInfo{
		Plant:      s.eng.PlantName(),
		Scenario:   s.eng.ScenarioID(),
		Policy:     s.eng.PolicyName(),
		Memory:     s.eng.memory,
		NU:         s.eng.NU(),
		T:          s.cs.Time(),
		X:          append([]float64(nil), x...),
		Level:      s.eng.fw.Monitor().Level(x).String(),
		Skips:      res.Skips,
		Runs:       res.Runs,
		Forced:     res.Forced,
		Violations: res.ViolationsX,
		Degraded:   res.Degraded,
		Energy:     res.Energy,
		Frozen:     s.frozen,
		Closed:     s.cs.Closed(),
	}
}

// Freeze suspends stepping for a migration handoff: further Steps return
// ErrSessionFrozen while reads (Info, Trace, State) keep serving, so a
// drain protocol can export a quiescent episode with no step racing the
// copy. It returns the frozen snapshot — the state the migration target
// must reproduce bit-for-bit. Freeze is idempotent; ErrSessionClosed
// after Close.
func (s *Session) Freeze() (SessionInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return SessionInfo{}, ErrSessionClosed
	}
	s.frozen = true
	return s.infoLocked(), nil
}

// Unfreeze aborts a migration handoff and resumes stepping. It is the
// rollback path of Freeze: a no-op unless frozen, ErrSessionClosed after
// Close.
func (s *Session) Unfreeze() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	s.frozen = false
	return nil
}

// Frozen reports whether the session is frozen for migration.
func (s *Session) Frozen() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frozen
}

// Close terminates the session and returns its workspace to the engine's
// pool for reuse. Further Steps return ErrSessionClosed; Info keeps
// serving the final snapshot. Close is idempotent and never fails; the
// error return keeps the io.Closer shape.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.final = s.infoLocked()
	s.final.Closed = true
	s.closed = true
	cs := s.cs
	s.cs = nil
	s.eng.releaseCore(cs)
	return nil
}
