package oic

// Wire types: the JSON schema shared by the in-process facade and the oicd
// HTTP server. Every type here is plain data — no internal types — so
// external clients can vendor this file's shapes in any language.

import "time"

// ScenarioInfo describes one plant scenario.
type ScenarioInfo struct {
	ID          string `json:"id"`
	Description string `json:"description,omitempty"`
	Detail      string `json:"detail,omitempty"`
}

// LadderInfo is an ordered scenario family (one experimental sweep).
type LadderInfo struct {
	Name      string         `json:"name"`
	Title     string         `json:"title,omitempty"`
	Scenarios []ScenarioInfo `json:"scenarios"`
}

// PlantInfo describes a registered plant: the GET /v1/plants payload.
type PlantInfo struct {
	Name         string       `json:"name"`
	Description  string       `json:"description"`
	CostLabel    string       `json:"cost_label"`
	EpisodeSteps int          `json:"episode_steps"`
	Headline     ScenarioInfo `json:"headline"`
	Ladders      []LadderInfo `json:"ladders,omitempty"`
}

// CreateSessionRequest opens a control session: POST /v1/sessions. X0 may
// be omitted, in which case the server samples an initial state from the
// strengthened safe set X′ with Seed. Trace records the episode from the
// first step (read back via GET /v1/sessions/{id}/trace); the server caps
// a traced session's length, after which steps fail with 409 trace_limit.
type CreateSessionRequest struct {
	Plant    string      `json:"plant"`
	Scenario string      `json:"scenario,omitempty"`
	Policy   string      `json:"policy,omitempty"`
	Memory   int         `json:"memory,omitempty"`
	Train    TrainConfig `json:"train,omitempty"`
	X0       []float64   `json:"x0,omitempty"`
	Seed     int64       `json:"seed,omitempty"`
	Trace    bool        `json:"trace,omitempty"`
}

// StepRequest advances a session: POST /v1/sessions/{id}/step. Exactly one
// of W (single step) or WS (batched steps, applied in order) is set; an
// empty body steps once with the zero disturbance.
type StepRequest struct {
	W  []float64   `json:"w,omitempty"`
	WS [][]float64 `json:"ws,omitempty"`
}

// StepResult is one executed step of Algorithm 1 on the wire.
type StepResult struct {
	T      int       `json:"t"`               // step index (0-based)
	Level  string    `json:"level"`           // monitor classification of the pre-step state
	Ran    bool      `json:"ran"`             // effective z(t): κ computed and applied
	Forced bool      `json:"forced"`          // monitor overrode the policy (x ∉ X′)
	U      []float64 `json:"u"`               // applied input (zeros when skipped)
	X      []float64 `json:"x"`               // successor state
	Error  string    `json:"error,omitempty"` // batch-path per-step failure
}

// StepResponse is the batched-step payload ({"ws": ...} requests).
type StepResponse struct {
	Results []StepResult `json:"results"`
}

// SessionInfo is a session snapshot: create/GET responses. Scenario,
// Policy, and Memory are the resolved values (never the default
// shorthands) and NU the plant's input dimension, so a front end holding
// only wire responses can reconstruct the session's exact trace
// fingerprint — what the oicd-router's shadow recording relies on.
type SessionInfo struct {
	ID         string    `json:"id,omitempty"` // assigned by the server
	Plant      string    `json:"plant"`
	Scenario   string    `json:"scenario"`
	Policy     string    `json:"policy"`
	Memory     int       `json:"memory,omitempty"` // resolved disturbance-memory window
	NU         int       `json:"nu,omitempty"`     // input dimension (NX is len(X))
	T          int       `json:"t"`
	X          []float64 `json:"x"`
	Level      string    `json:"level"`
	Skips      int       `json:"skips"`
	Runs       int       `json:"runs"`
	Forced     int       `json:"forced"`
	Violations int       `json:"violations"`
	Degraded   int       `json:"degraded,omitempty"` // κ failures downgraded to certified skips
	Energy     float64   `json:"energy"`
	Frozen     bool      `json:"frozen,omitempty"` // migration handoff in progress; steps 409
	Closed     bool      `json:"closed"`
}

// CreateFleetRequest opens a fleet: POST /v1/fleets. The engine fields
// (Plant … Train) match CreateSessionRequest; the scheduling fields
// configure the fleet. Size members are admitted immediately with initial
// states sampled from X′ under Seed (0 means start empty and admit via
// POST /v1/fleets/{id}/sessions).
type CreateFleetRequest struct {
	Plant    string      `json:"plant"`
	Scenario string      `json:"scenario,omitempty"`
	Policy   string      `json:"policy,omitempty"`
	Memory   int         `json:"memory,omitempty"`
	Train    TrainConfig `json:"train,omitempty"`

	ComputeBudget int   `json:"compute_budget,omitempty"`
	Workers       int   `json:"workers,omitempty"`
	MaxSessions   int   `json:"max_sessions,omitempty"`
	Size          int   `json:"size,omitempty"`
	Seed          int64 `json:"seed,omitempty"`

	// Degrade and TickDeadline map to the FleetConfig fields of the same
	// names: graceful degradation of optional κ failures into certified
	// skips, and a per-tick wall-time bound. Runtime knobs — neither is
	// journaled, so re-request them when recreating a fleet after
	// recovery.
	Degrade      bool          `json:"degrade,omitempty"`
	TickDeadline time.Duration `json:"tick_deadline_ns,omitempty"`

	// Elastic maps to FleetConfig.Elastic: the deadline-margin budget
	// controller. Requires tick_deadline_ns > 0. Like Degrade/TickDeadline
	// it is a runtime knob, not journaled — a fleet recreated by journal
	// recovery comes back static (replay re-executes recorded choices, so
	// no budget history is needed) and must be re-requested elastic. A
	// server started with -elastic applies default bounds to any
	// deadline-bearing, budget-bearing fleet that omits this field.
	Elastic *ElasticConfig `json:"elastic,omitempty"`

	// Trace records every member's episode (FleetConfig.Trace, capped at
	// the server's trace limit), read back via
	// GET /v1/fleets/{id}/sessions/{mid}/trace — the export side of
	// fleet-member migration.
	Trace bool `json:"trace,omitempty"`
}

// FleetInfo is a fleet snapshot: create/GET/DELETE responses.
type FleetInfo struct {
	ID string `json:"id,omitempty"` // assigned by the server
	FleetStats
	// MaxSkipBudget is the engine's compiled S_k chain depth.
	MaxSkipBudget int `json:"max_skip_budget,omitempty"`
}

// FleetTickRequest advances a fleet: POST /v1/fleets/{id}/tick. Ticks ≤ 1
// runs one tick with the given per-member disturbances (member ID → w,
// omitted members get zero); Ticks > 1 runs that many zero-disturbance
// ticks and requires WS to be empty.
type FleetTickRequest struct {
	Ticks int               `json:"ticks,omitempty"`
	WS    map[int][]float64 `json:"ws,omitempty"`
}

// FleetTickResponse carries one TickReport per executed tick. When a
// multi-tick request fails partway, Reports holds the ticks that ran and
// Error carries the terminal failure (the HTTP status reflects it too),
// mirroring the batched-step convention.
type FleetTickResponse struct {
	Reports []TickReport `json:"reports"`
	Error   string       `json:"error,omitempty"`
}

// FleetAdmitRequest admits one member: POST /v1/fleets/{id}/sessions. X0
// may be omitted, in which case the server samples from X′ with Seed.
type FleetAdmitRequest struct {
	X0   []float64 `json:"x0,omitempty"`
	Seed int64     `json:"seed,omitempty"`
}

// TraceResponse wraps a session's recorded episode:
// GET /v1/sessions/{id}/trace (the default JSON form; ?format=binary
// streams the canonical binary encoding instead).
type TraceResponse struct {
	ID    string `json:"id"`
	Trace *Trace `json:"trace"`
}

// ReplayRequest replays a recorded episode: POST /v1/replay. Exactly one
// of Trace (JSON form) or TraceBin (the canonical binary encoding,
// base64 on the wire) carries the episode; the remaining fields mirror
// ReplayOptions. The response is a ReplayReport.
type ReplayRequest struct {
	Trace         *Trace `json:"trace,omitempty"`
	TraceBin      []byte `json:"trace_bin,omitempty"`
	Policy        string `json:"policy,omitempty"`
	ComputeBudget int    `json:"compute_budget,omitempty"`
	Audit         bool   `json:"audit,omitempty"`
	IncludeTrace  bool   `json:"include_trace,omitempty"`
}

// ResumeSessionRequest imports a recorded episode as a live session:
// POST /v1/sessions/resume. Exactly one of Trace (JSON form) or TraceBin
// (canonical binary, base64 on the wire) carries the episode; the server
// rebuilds the engine from the trace's fingerprint, replays the episode
// to head with bit-exact verification (409 resume_mismatch on any
// divergence), and registers the session under a fresh ID — the landing
// half of live migration and node failover.
type ResumeSessionRequest struct {
	Trace    *Trace `json:"trace,omitempty"`
	TraceBin []byte `json:"trace_bin,omitempty"`
}

// FleetResumeMemberRequest imports a recorded member episode into a
// fleet: POST /v1/fleets/{id}/sessions/resume. Member is the fleet-local
// ID the member must keep (migration preserves identity); the fleet
// rejects IDs it has already issued with 409 resume_mismatch. The trace
// fields mirror ResumeSessionRequest.
type FleetResumeMemberRequest struct {
	Member   int    `json:"member"`
	Trace    *Trace `json:"trace,omitempty"`
	TraceBin []byte `json:"trace_bin,omitempty"`
}

// ErrorResponse is the uniform error payload of the oicd server.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"` // bad_request | not_found | unsafe | infeasible | session_closed | capacity
	// TraceID echoes the request's X-Oic-Trace-Id so a failing client can
	// quote the exact ID that correlates router and shard logs.
	TraceID string `json:"trace_id,omitempty"`
	// Node names the shard that produced (or failed to produce) the
	// response when the error passed through oicd-router.
	Node string `json:"node,omitempty"`
}
