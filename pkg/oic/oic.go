// Package oic is the public, stable facade over the opportunistic
// intermittent-control runtime (the paper's Algorithm 1 + Theorem 1): it
// turns the internal framework into a session-oriented service API that
// external programs — and this repository's own experiment pipeline and
// oicd server — build on.
//
// The two central types split the cost model cleanly:
//
//   - Engine is built once per (plant, scenario, policy) and owns every
//     expensive compiled artifact: the nested safety sets X′ ⊆ XI ⊆ X, the
//     controller's compiled parametric horizon LP, and the trained skip
//     policy. Engines are immutable after construction and safe for
//     concurrent use.
//   - Session is a cheap, poolable handle for one closed-loop run. Closing
//     a session returns its solver workspace (the tableau, the warm-start
//     buffers, the disturbance ring) to the engine's sync.Pool; the next
//     NewSession reuses it after a cold reset, so a pooled session's
//     trajectory is byte-identical to a freshly created one's.
//
// Errors are sentinel-based (errors.Is): ErrInfeasible, ErrUnsafe,
// ErrSessionClosed, ErrUnknownPlant, ErrUnknownScenario, ErrUnknownPolicy,
// ErrBadDimension. All request/response types marshal to JSON and are the
// wire schema of the oicd HTTP server, so the in-process and server paths
// speak the same language.
package oic

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"oic/internal/core"
	"oic/internal/lti"
	"oic/internal/mat"
	"oic/internal/plant"
	"oic/internal/reach"
	"oic/internal/rl"
)

// Built-in skip policies, valid as Config.Policy and as the policy
// argument of Engine.RunEpisode.
const (
	// PolicyAlwaysRun runs κ at every step: the traditional baseline.
	PolicyAlwaysRun = "always-run"
	// PolicyBangBang skips whenever the monitor permits (Eq. 7). The
	// default: safe, free, and requires no training.
	PolicyBangBang = "bang-bang"
	// PolicyDRL is the plant's learned skipping policy, trained at engine
	// construction with Config.Train.
	PolicyDRL = "drl"
)

// TrainConfig tunes PolicyDRL training. The zero value uses the plant's
// paper defaults.
type TrainConfig struct {
	Episodes int   `json:"episodes,omitempty"`
	Steps    int   `json:"steps,omitempty"`
	Seed     int64 `json:"seed,omitempty"`
}

// Config selects and parameterizes an Engine.
type Config struct {
	// Plant is the registered case-study name (see Plants).
	Plant string `json:"plant"`
	// Scenario is the plant scenario ID; empty means the headline scenario.
	Scenario string `json:"scenario,omitempty"`
	// Policy is the skipping policy Ω: PolicyAlwaysRun, PolicyBangBang
	// (default), or PolicyDRL.
	Policy string `json:"policy,omitempty"`
	// Memory is the disturbance-window length r the policy observes;
	// 0 means the policy's own requirement (the paper's r = 1 otherwise).
	Memory int `json:"memory,omitempty"`
	// Train configures PolicyDRL training; ignored for other policies.
	Train TrainConfig `json:"train,omitempty"`
}

// Engine owns the compiled artifacts of one (plant, scenario, policy)
// binding and hands out pooled Sessions over them. Safe for concurrent use.
type Engine struct {
	cfg      Config
	plant    plant.Plant
	scenario plant.Scenario
	inst     plant.Instance
	policy   core.SkipPolicy
	train    rl.TrainStats
	memory   int
	fw       *core.Framework
	zeroW    []float64 // shared zero disturbance, never written

	pool sync.Pool // recycled *core.Session workspaces

	// Skip-budget oracle over the S_k chain, built lazily on first use
	// (NewFleet, SkipBudget): most engines never pay for it.
	sbOnce sync.Once
	sb     *reach.SkipBudget
	sbErr  error
}

// maxSkipChain is the S_k chain depth the engine's skip-budget oracle
// precomputes: budgets larger than this report as maxSkipChain. Eight
// covers every scheduling decision the fleet makes (priority ordering and
// shed headroom saturate well before that).
const maxSkipChain = 8

// NewEngine resolves the plant and scenario from the registry, compiles
// the scenario's safety sets and controller program, and (for PolicyDRL)
// trains the skipping policy. This is the expensive call — amortize it by
// reusing the engine across sessions, as oicd's per-plant engine cache
// does.
func NewEngine(cfg Config) (*Engine, error) {
	p, err := plant.Get(cfg.Plant)
	if err != nil {
		return nil, err
	}
	sc := p.Headline()
	if cfg.Scenario != "" {
		if sc, err = plant.FindScenario(p, cfg.Scenario); err != nil {
			return nil, err
		}
	}
	inst, err := p.Instantiate(sc)
	if err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, plant: p, scenario: sc, inst: inst}

	if cfg.Policy == "" {
		cfg.Policy = PolicyBangBang
		e.cfg.Policy = PolicyBangBang
	}
	switch cfg.Policy {
	case PolicyAlwaysRun:
		e.policy = core.AlwaysRun{}
	case PolicyBangBang:
		e.policy = core.BangBang{}
	case PolicyDRL:
		pol, stats, err := inst.TrainSkipPolicy(plant.TrainConfig{
			Episodes: cfg.Train.Episodes, Steps: cfg.Train.Steps, Seed: cfg.Train.Seed,
			Memory: cfg.Memory, // train with the window the sessions will use
		})
		if err != nil {
			return nil, fmt.Errorf("oic: training %s policy: %w", cfg.Plant, err)
		}
		e.policy, e.train = pol, stats
	default:
		return nil, fmt.Errorf("%w: %q (built in: %s, %s, %s)",
			ErrUnknownPolicy, cfg.Policy, PolicyAlwaysRun, PolicyBangBang, PolicyDRL)
	}

	e.memory = cfg.Memory
	if e.memory <= 0 {
		e.memory = plant.PolicyMemory(e.policy)
	} else if mp, ok := e.policy.(plant.MemoryPolicy); ok && mp.PolicyMemory() > 0 && mp.PolicyMemory() != e.memory {
		// A memory-sensitive policy's feature encoder is sized for the
		// window it was trained with; overriding it would corrupt the
		// feature vector (and silently diverge from the episode path).
		return nil, fmt.Errorf("%w: config memory %d conflicts with the policy's trained window %d",
			ErrBadDimension, e.memory, mp.PolicyMemory())
	}
	fw, err := inst.Framework(e.policy, e.memory)
	if err != nil {
		return nil, err
	}
	e.fw = fw
	e.zeroW = make([]float64, inst.System().NX())
	return e, nil
}

// Config returns the configuration the engine was built with (policy
// defaulting applied).
func (e *Engine) Config() Config { return e.cfg }

// PlantName returns the engine's plant registry name.
func (e *Engine) PlantName() string { return e.plant.Name() }

// ScenarioID returns the resolved scenario ID (the headline's when the
// config left it empty).
func (e *Engine) ScenarioID() string { return e.scenario.ID }

// PolicyName returns the skipping policy's name.
func (e *Engine) PolicyName() string { return e.cfg.Policy }

// TrainStats returns the PolicyDRL training statistics (zero value for
// untrained policies).
func (e *Engine) TrainStats() rl.TrainStats { return e.train }

// EpisodeSteps returns the plant's default episode length.
func (e *Engine) EpisodeSteps() int { return e.plant.EpisodeSteps() }

// NX and NU return the plant's state and input dimensions.
func (e *Engine) NX() int { return e.inst.System().NX() }

// NU returns the plant's input dimension.
func (e *Engine) NU() int { return e.inst.System().NU() }

// System returns the engine's affine LTI model (in-module escape hatch for
// the experiment pipeline; external clients use the wire API).
func (e *Engine) System() *lti.System { return e.inst.System() }

// SafetySets returns the compiled nested safety sets X′ ⊆ XI ⊆ X
// (in-module escape hatch, shared — do not mutate).
func (e *Engine) SafetySets() core.SafetySets { return e.inst.Sets() }

// SampleInitialStates draws n states from the strengthened safe set X′
// with a deterministic seed — every returned state is a valid NewSession
// start.
func (e *Engine) SampleInitialStates(seed int64, n int) ([][]float64, error) {
	rng := rand.New(rand.NewSource(seed))
	xs, err := e.inst.SampleInitialStates(n, rng)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, len(xs))
	for i, x := range xs {
		out[i] = x
	}
	return out, nil
}

// DrawCase deterministically generates one evaluation case of a seeded
// experiment: an initial state sampled from X′ followed by a steps-long
// disturbance trace from the scenario's exogenous process, drawn from a
// single seeded stream in that order. It is the exact case-generation
// recipe of the paper pipeline (internal/exp), exposed so clients can
// replay its episodes bit-for-bit.
func (e *Engine) DrawCase(seed int64, steps int) (x0 []float64, w [][]float64, err error) {
	rng := rand.New(rand.NewSource(seed))
	x0s, err := e.inst.SampleInitialStates(1, rng)
	if err != nil {
		return nil, nil, fmt.Errorf("oic: DrawCase: sampling initial state: %w", err)
	}
	if len(x0s) == 0 {
		return nil, nil, fmt.Errorf("oic: DrawCase: sampling initial state: empty sample")
	}
	ws := e.inst.Disturbances(rng, steps)
	w = make([][]float64, len(ws))
	for i, wi := range ws {
		w[i] = wi
	}
	return x0s[0], w, nil
}

// EpisodeReport is the wire form of one completed closed-loop episode.
type EpisodeReport struct {
	Policy     string  `json:"policy"`
	Steps      int     `json:"steps"`
	Cost       float64 `json:"cost"`   // plant resource metric (fuel, kWh, Δv)
	Energy     float64 `json:"energy"` // Σ‖u‖₁ — Problem 1's objective
	Skips      int     `json:"skips"`
	Runs       int     `json:"runs"`
	Forced     int     `json:"forced"`
	Violations int     `json:"violations"` // states outside X (Theorem 1: 0)

	ControllerCalls int           `json:"controller_calls"`
	CtrlTime        time.Duration `json:"ctrl_time_ns"`
	OverheadTime    time.Duration `json:"overhead_time_ns"`
}

// RunEpisode executes Algorithm 1 from x0 over the disturbance trace w
// under the named policy — one of the built-ins, PolicyDRL for the
// engine's trained policy, or "" for the engine's configured policy — and
// meters the plant cost. It delegates to the plant's episode runner, so
// results are identical to the pre-facade experiment pipeline's.
func (e *Engine) RunEpisode(policy string, x0 []float64, w [][]float64) (*EpisodeReport, error) {
	pol, err := e.resolvePolicy(policy)
	if err != nil {
		return nil, err
	}
	if len(x0) != e.NX() {
		return nil, fmt.Errorf("%w: x0 has dim %d, want %d", ErrBadDimension, len(x0), e.NX())
	}
	ws := make([]mat.Vec, len(w))
	for i, wi := range w {
		if len(wi) != e.NX() {
			return nil, fmt.Errorf("%w: w[%d] has dim %d, want %d", ErrBadDimension, i, len(wi), e.NX())
		}
		ws[i] = wi
	}
	ep, err := e.inst.RunEpisode(pol, mat.Vec(x0), ws)
	if err != nil {
		return nil, err
	}
	r := ep.Result
	return &EpisodeReport{
		Policy: pol.Name(), Steps: r.Skips + r.Runs,
		Cost: ep.Cost, Energy: ep.Energy,
		Skips: r.Skips, Runs: r.Runs, Forced: r.Forced,
		Violations:      r.ViolationsX,
		ControllerCalls: r.ControllerCalls,
		CtrlTime:        r.CtrlTime, OverheadTime: r.OverheadTime,
	}, nil
}

// resolvePolicy maps a wire policy name to a SkipPolicy, reusing the
// engine's trained policy for PolicyDRL.
func (e *Engine) resolvePolicy(name string) (core.SkipPolicy, error) {
	switch name {
	case "":
		return e.policy, nil
	case PolicyAlwaysRun:
		return core.AlwaysRun{}, nil
	case PolicyBangBang:
		return core.BangBang{}, nil
	case PolicyDRL:
		if e.cfg.Policy != PolicyDRL {
			return nil, fmt.Errorf("%w: engine was built with policy %q, not %q",
				ErrUnknownPolicy, e.cfg.Policy, PolicyDRL)
		}
		return e.policy, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownPolicy, name)
}

// skipBudgetOracle lazily builds the engine's S_k-chain oracle (shared,
// immutable, concurrent-safe).
func (e *Engine) skipBudgetOracle() (*reach.SkipBudget, error) {
	e.sbOnce.Do(func() {
		e.sb, e.sbErr = reach.NewSkipBudget(e.inst.Sets().XI, e.inst.System(), maxSkipChain)
		if e.sbErr != nil {
			e.sbErr = fmt.Errorf("oic: computing skip-budget chain: %w", e.sbErr)
		}
	})
	return e.sb, e.sbErr
}

// SkipBudget returns the remaining consecutive-skip budget of x: the
// largest k ≤ MaxSkipBudget with x ∈ S_k, i.e. how many consecutive
// zero-input control periods the state is certified to absorb while
// staying inside XI under every admissible disturbance. 0 means x ∉ X′ —
// the monitor would force κ at the next step. The S_k chain is compiled on
// first call and cached on the engine.
func (e *Engine) SkipBudget(x []float64) (int, error) {
	if len(x) != e.NX() {
		return 0, fmt.Errorf("%w: x has dim %d, want %d", ErrBadDimension, len(x), e.NX())
	}
	sb, err := e.skipBudgetOracle()
	if err != nil {
		return 0, err
	}
	return sb.Remaining(mat.Vec(x)), nil
}

// MaxSkipBudget returns the depth of the engine's compiled S_k chain — the
// largest budget SkipBudget ever reports.
func (e *Engine) MaxSkipBudget() (int, error) {
	sb, err := e.skipBudgetOracle()
	if err != nil {
		return 0, err
	}
	return sb.Max(), nil
}

// acquireCore hands out a recording-off core session at x0: a pooled
// workspace reset to cold when one is available, a fresh one otherwise.
// Shared by NewSession and Fleet.Admit.
func (e *Engine) acquireCore(x0 []float64) (*core.Session, error) {
	if len(x0) != e.NX() {
		return nil, fmt.Errorf("%w: x0 has dim %d, want %d", ErrBadDimension, len(x0), e.NX())
	}
	var cs *core.Session
	if v := e.pool.Get(); v != nil {
		cs = v.(*core.Session)
		if err := cs.Reset(mat.Vec(x0)); err != nil {
			e.pool.Put(cs) // the workspace is fine; only x0 was rejected
			return nil, err
		}
	} else {
		var err error
		cs, err = e.fw.NewSession(mat.Vec(x0))
		if err != nil {
			return nil, err
		}
	}
	// Serving sessions are long-lived: keep aggregate counters only, not
	// an unbounded per-step record trail.
	cs.SetRecording(false)
	return cs, nil
}

// releaseCore terminates a core session and recycles its workspace.
func (e *Engine) releaseCore(cs *core.Session) {
	cs.Close()
	e.pool.Put(cs)
}

// Level classifies a state against the engine's nested safety sets,
// returning the monitor's wire label ("X'", "XI", "X", "unsafe"), or
// ErrBadDimension for a wrong-length state.
func (e *Engine) Level(x []float64) (string, error) {
	if len(x) != e.NX() {
		return "", fmt.Errorf("%w: x has dim %d, want %d", ErrBadDimension, len(x), e.NX())
	}
	return e.fw.Monitor().Level(mat.Vec(x)).String(), nil
}

// Plants lists every registered plant with its scenario catalogue — the
// payload of oicd's GET /v1/plants.
func Plants() []PlantInfo {
	names := plant.Names()
	out := make([]PlantInfo, 0, len(names))
	for _, name := range names {
		p, err := plant.Get(name)
		if err != nil {
			continue
		}
		info := PlantInfo{
			Name:         p.Name(),
			Description:  p.Description(),
			CostLabel:    p.CostLabel(),
			EpisodeSteps: p.EpisodeSteps(),
			Headline:     scenarioInfo(p.Headline()),
		}
		for _, l := range p.Ladders() {
			li := LadderInfo{Name: l.Name, Title: l.Title}
			for _, sc := range l.Scenarios {
				li.Scenarios = append(li.Scenarios, scenarioInfo(sc))
			}
			info.Ladders = append(info.Ladders, li)
		}
		out = append(out, info)
	}
	return out
}

func scenarioInfo(sc plant.Scenario) ScenarioInfo {
	return ScenarioInfo{ID: sc.ID, Description: sc.Description, Detail: sc.Detail}
}
