package oic

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"oic/internal/fault"
)

// tracePrefix clones the first n steps of a trace — the image a
// write-ahead journal holds after a crash mid-episode.
func tracePrefix(t *Trace, n int) *Trace {
	p := *t
	p.Steps = append([]TraceStep(nil), t.Steps[:n]...)
	return &p
}

// The step hook is write-ahead ordered and carries the full step payload:
// every successful step fires exactly one event, in step order, matching
// the wire result bit-for-bit.
func TestSessionStepHookWriteAhead(t *testing.T) {
	e := accEngine(t)
	x0, ws := fleetCase(t, e, 41, 20)
	s, err := e.NewSession(x0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	type owned struct {
		t    int
		ran  bool
		u, x []float64
	}
	var got []owned
	s.SetStepHook(func(ev StepEvent) {
		// The event's slices are views; copy what we keep.
		got = append(got, owned{t: ev.T, ran: ev.Ran,
			u: append([]float64(nil), ev.U...),
			x: append([]float64(nil), ev.X...)})
	})
	for i, w := range ws {
		r, err := s.Step(context.Background(), w)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if len(got) != i+1 {
			t.Fatalf("step %d: %d events, want %d", i, len(got), i+1)
		}
		ev := got[i]
		if ev.t != r.T || ev.ran != r.Ran ||
			fmt.Sprintf("%x", ev.u) != fmt.Sprintf("%x", r.U) ||
			fmt.Sprintf("%x", ev.x) != fmt.Sprintf("%x", r.X) {
			t.Fatalf("step %d: event %+v disagrees with result %+v", i, ev, r)
		}
	}
	s.SetStepHook(nil)
	if _, err := s.Step(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ws) {
		t.Fatal("cleared hook still fired")
	}
}

// The crash-recovery acceptance property at the session level: run an
// episode, cut it at an arbitrary point (the journal image), resume, and
// finish — the final trace is byte-identical to the uninterrupted run's.
func TestResumeSessionByteIdentical(t *testing.T) {
	e := accEngine(t)
	const steps, cut = 30, 17
	x0, ws := fleetCase(t, e, 7, steps)

	// Uninterrupted reference run.
	ref, err := e.NewSession(x0)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if err := ref.StartTrace(0); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.StepMany(context.Background(), ws); err != nil {
		t.Fatal(err)
	}
	full, err := ref.Trace()
	if err != nil {
		t.Fatal(err)
	}

	// Crash after `cut` steps: resume from the journaled prefix, then
	// replay the remaining disturbances.
	s, err := e.ResumeSession(tracePrefix(full, cut), ResumeOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Time() != cut {
		t.Fatalf("resumed at t=%d, want %d", s.Time(), cut)
	}
	if _, err := s.StepMany(context.Background(), ws[cut:]); err != nil {
		t.Fatal(err)
	}
	recovered, err := s.Trace()
	if err != nil {
		t.Fatal(err)
	}
	refBytes, err := EncodeTrace(full)
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := EncodeTrace(recovered)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refBytes, gotBytes) {
		t.Fatal("recovered episode is not byte-identical to the uninterrupted run")
	}
	if a, b := ref.Info(), s.Info(); fmt.Sprintf("%x", a.X) != fmt.Sprintf("%x", b.X) ||
		a.Energy != b.Energy || a.Runs != b.Runs || a.Skips != b.Skips {
		t.Fatalf("recovered info %+v differs from reference %+v", b, a)
	}
}

// A tampered (or torn-beyond-repair) journal must fail resume loudly:
// any bit flipped in a recorded input or successor yields
// ErrResumeMismatch, never a silently-wrong session.
func TestResumeSessionDivergenceDetected(t *testing.T) {
	e := accEngine(t)
	x0, ws := fleetCase(t, e, 9, 12)
	s, err := e.NewSession(x0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.StartTrace(0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StepMany(context.Background(), ws); err != nil {
		t.Fatal(err)
	}
	tr, err := s.Trace()
	if err != nil {
		t.Fatal(err)
	}
	tamper := func(mut func(st *TraceStep)) *Trace {
		p := tracePrefix(tr, len(tr.Steps))
		st := p.Steps[5]
		st.U = append([]float64(nil), st.U...)
		st.X = append([]float64(nil), st.X...)
		mut(&st)
		p.Steps[5] = st
		return p
	}
	for name, p := range map[string]*Trace{
		"input":     tamper(func(st *TraceStep) { st.U[0] += 1e-12 }),
		"successor": tamper(func(st *TraceStep) { st.X[0] += 1e-12 }),
	} {
		if _, err := e.ResumeSession(p, ResumeOptions{}); !errors.Is(err, ErrResumeMismatch) {
			t.Fatalf("tampered %s: err = %v, want ErrResumeMismatch", name, err)
		}
	}
}

// Fleet-level crash recovery: resume every member from its journaled
// trace under its old ID, then keep ticking — trajectories, member IDs,
// and the admission counter all match the uninterrupted fleet.
func TestFleetResumeMembers(t *testing.T) {
	e := accEngine(t)
	const n, preTicks, postTicks = 6, 10, 8
	cfg := FleetConfig{ComputeBudget: 4, Workers: 3, Trace: true}

	newFleet := func() *Fleet {
		f, err := e.NewFleet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	ref := newFleet()
	defer ref.Close()

	ids := make([]int, n)
	x0s := make([][]float64, n)
	dist := make([][][]float64, n)
	for i := 0; i < n; i++ {
		var err error
		x0s[i], dist[i] = fleetCase(t, e, int64(100+i), preTicks+postTicks)
		if ids[i], err = ref.Admit(x0s[i]); err != nil {
			t.Fatal(err)
		}
	}
	tickAll := func(f *Fleet, from, to int) []TickReport {
		var reps []TickReport
		for k := from; k < to; k++ {
			ws := map[int][]float64{}
			for i, id := range ids {
				ws[id] = dist[i][k]
			}
			rep, err := f.Tick(context.Background(), ws)
			if err != nil {
				t.Fatalf("tick %d: %v", k, err)
			}
			if len(rep.Errors) != 0 || rep.Violations != 0 {
				t.Fatalf("tick %d: errors=%v violations=%d", k, rep.Errors, rep.Violations)
			}
			reps = append(reps, rep)
		}
		return reps
	}
	tickAll(ref, 0, preTicks)

	// "Crash": capture each member's journal image and rebuild a fleet.
	rec := newFleet()
	defer rec.Close()
	for _, id := range ids {
		tr, err := ref.MemberTrace(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := rec.ResumeMember(id, tr); err != nil {
			t.Fatalf("resume member %d: %v", id, err)
		}
	}
	for _, id := range ids {
		a, err := ref.Member(id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rec.Member(id)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%x", a.X) != fmt.Sprintf("%x", b.X) || a.T != b.T || a.Energy != b.Energy {
			t.Fatalf("member %d: recovered %+v differs from reference %+v", id, b, a)
		}
	}

	// Both fleets keep running on the same disturbances and stay in
	// lockstep; a post-recovery admission gets a fresh (non-colliding) ID.
	refReps := tickAll(ref, preTicks, preTicks+postTicks)
	recReps := tickAll(rec, preTicks, preTicks+postTicks)
	for k := range refReps {
		if refReps[k].Computes != recReps[k].Computes || refReps[k].Shed != recReps[k].Shed {
			t.Fatalf("post-recovery tick %d diverged: %+v vs %+v", k, recReps[k], refReps[k])
		}
	}
	for _, id := range ids {
		a, _ := ref.MemberTrace(id)
		b, _ := rec.MemberTrace(id)
		ab, err := EncodeTrace(a)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := EncodeTrace(b)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ab, bb) {
			t.Fatalf("member %d: post-recovery episode not byte-identical", id)
		}
	}
	x0, _ := fleetCase(t, e, 999, 1)
	fresh, err := rec.Admit(x0)
	if err != nil {
		t.Fatal(err)
	}
	if want := ids[n-1] + 1; fresh != want {
		t.Fatalf("post-recovery admission got ID %d, want %d", fresh, want)
	}
}

// Resume refuses an already-issued member ID — the collision guard that
// keeps a corrupt or replayed-twice journal from aliasing two members.
func TestFleetResumeMemberIDCollision(t *testing.T) {
	e := accEngine(t)
	f, err := e.NewFleet(FleetConfig{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	x0, ws := fleetCase(t, e, 3, 2)
	s, err := e.NewSession(x0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.StartTrace(0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StepMany(context.Background(), ws); err != nil {
		t.Fatal(err)
	}
	tr, err := s.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ResumeMember(4, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.ResumeMember(4, tr); !errors.Is(err, ErrResumeMismatch) {
		t.Fatalf("ID reuse: err = %v, want ErrResumeMismatch", err)
	}
	if err := f.ResumeMember(2, tr); !errors.Is(err, ErrResumeMismatch) {
		t.Fatalf("stale ID: err = %v, want ErrResumeMismatch", err)
	}
}

// The fleet hook fires once per member per tick, concurrently but
// member-keyed, and a faulted fleet under Degrade sheds optional
// computes safely: degradations are counted, safety holds, and the same
// seed degrades identically.
func TestFleetFaultsDegradeSafely(t *testing.T) {
	e := accEngine(t)
	run := func() (degraded int64, viol int, events int) {
		f, err := e.NewFleet(FleetConfig{Workers: 4, Degrade: true})
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var mu sync.Mutex
		f.SetStepHook(func(member int, ev StepEvent) {
			mu.Lock()
			events++
			mu.Unlock()
		})
		inj := fault.New(23)
		inj.Enable(fault.SiteSchedCompute, 0.5)
		f.SetFaults(inj)
		ids := make([]int, 10)
		for i := range ids {
			x0, _ := fleetCase(t, e, int64(i+1), 0)
			if ids[i], err = f.Admit(x0); err != nil {
				t.Fatal(err)
			}
		}
		for k := 0; k < 40; k++ {
			rep, err := f.Tick(context.Background(), nil)
			if err != nil {
				t.Fatal(err)
			}
			// Injected faults on members without skip budget are loud and
			// evict; every surviving member's state stays safe.
			if rep.Violations != 0 {
				t.Fatalf("tick %d: %d violations under faults", k, rep.Violations)
			}
		}
		st := f.Stats()
		return st.Degraded, st.Violations, events
	}
	deg, viol, events := run()
	if viol != 0 {
		t.Fatalf("violations = %d, want 0", viol)
	}
	if deg == 0 {
		t.Fatal("rate-0.5 faults degraded nothing")
	}
	if events == 0 {
		t.Fatal("fleet step hook never fired")
	}
	deg2, viol2, events2 := run()
	if deg2 != deg || viol2 != viol || events2 != events {
		t.Fatalf("same seed diverged: (%d,%d,%d) vs (%d,%d,%d)", deg, viol, events, deg2, viol2, events2)
	}
}

// A 1ns tick deadline degrades every optional compute with chain left —
// the facade-level view of the scheduler's deadline shedding.
func TestFleetTickDeadlineDegrades(t *testing.T) {
	e := accEngine(t)
	f, err := e.NewFleet(FleetConfig{Workers: 2, TickDeadline: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 8; i++ {
		x0, _ := fleetCase(t, e, int64(i+1), 0)
		if _, err := f.Admit(x0); err != nil {
			t.Fatal(err)
		}
	}
	var deg int
	for k := 0; k < 5; k++ {
		rep, err := f.Tick(context.Background(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Violations != 0 || len(rep.Errors) != 0 {
			t.Fatalf("tick %d: violations=%d errors=%v", k, rep.Violations, rep.Errors)
		}
		deg += rep.Degraded
	}
	if deg == 0 {
		t.Fatal("expired deadline degraded nothing")
	}
}
