package oic

import (
	"context"
	"fmt"
	"sync"
	"time"

	"oic/internal/budget"
	"oic/internal/core"
	"oic/internal/fault"
	"oic/internal/mat"
	"oic/internal/reach"
	"oic/internal/sched"
	"oic/internal/trace"
)

// FleetConfig tunes a Fleet.
type FleetConfig struct {
	// ComputeBudget caps full κ computations per tick; ≤ 0 means
	// unlimited (no shedding — the fleet behaves like StepBatch).
	ComputeBudget int `json:"compute_budget,omitempty"`
	// Workers bounds the goroutine pool for the decide and step phases;
	// ≤ 0 means GOMAXPROCS. Per-session results are byte-identical for
	// every choice.
	Workers int `json:"workers,omitempty"`
	// MaxSessions is the admission-control capacity; ≤ 0 means 4096.
	MaxSessions int `json:"max_sessions,omitempty"`
	// Trace records every member's episode from admission (MemberTrace
	// reads it back). Costs one bounded append per member step when on;
	// a single nil check when off.
	Trace bool `json:"trace,omitempty"`
	// TraceLimit caps recorded steps per member; once reached the member
	// keeps stepping but its recording stops growing (the trace stays a
	// complete prefix of the episode). ≤ 0 means unlimited.
	TraceLimit int `json:"trace_limit,omitempty"`
	// Degrade enables graceful degradation on member sessions: a κ failure
	// at a state the monitor did not force (x ∈ X′, so the zero-input skip
	// is certified by Theorem 1) downgrades to that skip instead of
	// evicting the member. Forced-compute failures stay terminal.
	Degrade bool `json:"degrade,omitempty"`
	// TickDeadline bounds one tick's wall time: past it, still-pending
	// optional computes with skip budget left shed into safe skips
	// (counted in TickReport.Degraded). 0 means no deadline.
	TickDeadline time.Duration `json:"tick_deadline_ns,omitempty"`
	// Elastic turns the compute budget into a control variable: after
	// every tick a deterministic PI controller (internal/budget,
	// DESIGN.md §13) retunes the budget from the measured DeadlineMargin,
	// and admission capacity scales with reclaimed ratio and pressure.
	// Requires TickDeadline > 0 (the margin is the loop's input). Nil
	// keeps the budget static.
	Elastic *ElasticConfig `json:"elastic,omitempty"`
}

// ElasticConfig bounds the elastic-budget controller of FleetConfig.
type ElasticConfig struct {
	// MinBudget and MaxBudget bound the per-tick compute budget the
	// controller may set. MinBudget ≤ 0 defaults to 1; MaxBudget must be
	// ≥ MinBudget. The forced-compute floor may exceed MaxBudget
	// transiently — safety outranks the cap.
	MinBudget int `json:"min_budget,omitempty"`
	MaxBudget int `json:"max_budget"`
	// TargetMargin is the deadline margin the controller regulates to;
	// ≤ 0 defaults to TickDeadline/5.
	TargetMargin time.Duration `json:"target_margin_ns,omitempty"`
}

// DefaultFleetSessions is the MaxSessions default.
const DefaultFleetSessions = 4096

// Fleet multiplexes many pooled sessions of one engine over a bounded
// worker pool against a per-tick compute budget — the opportunistic fleet
// scheduler (DESIGN.md §7). Each Tick runs every member's cheap
// monitor+policy decision first, then executes the near-free skip lane and
// a budget-bounded compute lane planned by internal/sched: forced
// computations always run, optional ones fill the budget in order of
// remaining skip budget (most urgent first), and the overflow is shed into
// guaranteed-safe skips.
//
// A Fleet serializes its own method calls with an internal mutex;
// parallelism lives inside Tick. Member trajectories are deterministic:
// byte-identical across Workers settings for a fixed admission/disturbance
// history and budget.
type Fleet struct {
	mu   sync.Mutex
	eng  *Engine
	cfg  FleetConfig
	sb   *reach.SkipBudget
	sch  *sched.Scheduler
	zero mat.Vec // shared all-zero disturbance template

	members []*fleetMember // admission order (ascending ID)
	roster  []sched.Member // cached adapter view of members, same order
	byID    map[int]int    // member ID → index into members
	nextID  int
	closed  bool

	hook func(member int, ev StepEvent) // write-ahead journaling hook; nil unless SetStepHook

	// budget is the live per-tick compute budget — per-tick state, not
	// frozen config. Static fleets keep it at cfg.ComputeBudget; elastic
	// fleets retune it every tick (and SetComputeBudget retunes either).
	budget int
	ctrl   *budget.Controller // elastic loop; nil unless cfg.Elastic
	effMax int                // elastic admission capacity; cfg.MaxSessions when static

	lastForced  int // backpressure signal: forced computes last tick
	tickTime    time.Duration
	budgetTicks int64 // Σ per-tick budgets across ticks (utilization denominator)
	violBase    int   // violations carried over from evicted members
	stats       FleetStats
}

// fleetMember adapts one core session to sched.Member. The staged
// disturbance w is written by Tick before scheduling and read by Step.
type fleetMember struct {
	f   *Fleet
	id  int
	cs  *core.Session
	w   mat.Vec         // owned buffer, re-staged every tick
	rec *trace.Recorder // per-member episode recording; nil unless FleetConfig.Trace
}

// Decide implements sched.Member: the monitor level, the policy verdict
// (consulted exactly as often as the plain session path would), and the
// remaining S_k budget.
func (m *fleetMember) Decide() sched.Decision {
	e := m.f.eng
	x := m.cs.StateView()
	forced := e.fw.Monitor().Level(x) != core.InXPrime
	compute := forced || e.fw.Policy.Decide(m.cs.Time(), x, m.cs.RecentWView())
	return sched.Decision{Compute: compute, Forced: forced, Budget: m.f.sb.Remaining(x)}
}

// Step implements sched.Member. The monitor inside the core session still
// overrides a skip whenever x ∉ X′, so even a (never planned) mis-shed
// could not break Theorem 1.
func (m *fleetMember) Step(compute bool) error {
	rec, err := m.cs.StepWithChoice(m.w, compute)
	if err != nil {
		return err
	}
	if m.rec != nil && !m.rec.Full() {
		_ = m.rec.Append(rec.Ran, rec.Forced, uint8(rec.Level), rec.W, rec.U, rec.Next)
	}
	if h := m.f.hook; h != nil {
		// Safe to read without the fleet lock: SetStepHook takes f.mu and
		// Step only runs inside Tick, which holds it. The hook itself must
		// be safe for concurrent calls — the step lane is parallel.
		h(m.id, StepEvent{
			T: rec.T, Ran: rec.Ran, Forced: rec.Forced, Level: uint8(rec.Level),
			W: rec.W, U: rec.U, X: rec.Next,
		})
	}
	return nil
}

// NewFleet creates an empty fleet over the engine. The S_k skip-budget
// chain is compiled on first fleet creation and shared engine-wide.
func (e *Engine) NewFleet(cfg FleetConfig) (*Fleet, error) {
	sb, err := e.skipBudgetOracle()
	if err != nil {
		return nil, fmt.Errorf("oic: NewFleet: %w", err)
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultFleetSessions
	}
	var ctrl *budget.Controller
	if el := cfg.Elastic; el != nil {
		if cfg.TickDeadline <= 0 {
			return nil, fmt.Errorf("oic: NewFleet: %w: Elastic requires TickDeadline > 0", ErrBadConfig)
		}
		norm := *el
		if norm.MinBudget <= 0 {
			norm.MinBudget = 1
		}
		if norm.MaxBudget < norm.MinBudget {
			return nil, fmt.Errorf("oic: NewFleet: %w: Elastic.MaxBudget %d < MinBudget %d",
				ErrBadConfig, norm.MaxBudget, norm.MinBudget)
		}
		if norm.TargetMargin <= 0 {
			norm.TargetMargin = cfg.TickDeadline / 5
		}
		if norm.TargetMargin >= cfg.TickDeadline {
			return nil, fmt.Errorf("oic: NewFleet: %w: Elastic.TargetMargin %v ≥ TickDeadline %v",
				ErrBadConfig, norm.TargetMargin, cfg.TickDeadline)
		}
		cfg.Elastic = &norm
		initial := cfg.ComputeBudget
		if initial <= 0 {
			initial = norm.MaxBudget // unlimited makes no sense elastically: start wide open
		}
		ctrl = budget.New(budget.Config{
			Min: norm.MinBudget, Max: norm.MaxBudget, Target: norm.TargetMargin,
		}, initial)
	}
	f := &Fleet{
		eng:    e,
		cfg:    cfg,
		sb:     sb,
		ctrl:   ctrl,
		budget: cfg.ComputeBudget,
		effMax: cfg.MaxSessions,
		zero:   make(mat.Vec, e.NX()),
		byID:   map[int]int{},
	}
	if ctrl != nil {
		f.budget = ctrl.Budget()
	}
	f.sch = sched.New(sched.Config{
		ComputeBudget: f.budget,
		Workers:       cfg.Workers,
		TickDeadline:  cfg.TickDeadline,
	})
	return f, nil
}

// SetComputeBudget retunes the per-tick compute budget; it applies from
// the next Tick. On an elastic fleet the controller re-seeds at the new
// value (clamped into [MinBudget, MaxBudget]) and keeps regulating from
// there — the out-of-band override an operator or autoscaler uses.
func (f *Fleet) SetComputeBudget(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.ctrl != nil {
		f.ctrl.Set(n)
		n = f.ctrl.Budget()
	}
	f.budget = n
	f.sch.SetComputeBudget(n)
}

// ComputeBudget returns the live per-tick compute budget.
func (f *Fleet) ComputeBudget() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.budget
}

// SetFaults installs (or clears, with nil) a deterministic fault injector
// on the fleet's scheduler — the chaos-testing entry point. Faults fire at
// the compute-dispatch site; with FleetConfig.Degrade semantics, optional
// computes with skip budget shed safely while forced ones fail loud.
func (f *Fleet) SetFaults(inj *fault.Injector) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sch = sched.New(sched.Config{
		ComputeBudget: f.budget, // carry the live (possibly retuned) budget
		Workers:       f.cfg.Workers,
		TickDeadline:  f.cfg.TickDeadline,
		Faults:        inj,
	})
}

// Config returns the fleet's configuration (defaults applied).
func (f *Fleet) Config() FleetConfig { return f.cfg }

// Admit opens a new member session at x0 (which must lie inside XI) and
// returns its fleet-unique ID. Admission control rejects with
// ErrFleetFull at capacity and with ErrFleetOverloaded while the last
// tick's forced computations saturate the compute budget — the
// backpressure signal that keeps an oversubscribed fleet from accreting
// sessions it can only serve by overrunning its budget.
func (f *Fleet) Admit(x0 []float64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrFleetClosed
	}
	if len(f.members) >= f.capLocked() {
		f.stats.Rejected++
		return 0, ErrFleetFull
	}
	if f.budget > 0 && f.lastForced >= f.budget {
		f.stats.Rejected++
		return 0, ErrFleetOverloaded
	}
	cs, err := f.eng.acquireCore(x0)
	if err != nil {
		f.stats.Rejected++
		return 0, err
	}
	id := f.nextID
	f.nextID++
	if f.cfg.Degrade {
		cs.SetDegrade(true)
	}
	m := &fleetMember{f: f, id: id, cs: cs, w: make(mat.Vec, f.eng.NX())}
	if f.cfg.Trace {
		m.rec = trace.NewRecorder(f.eng.traceMeta(), x0, f.eng.NU(), f.cfg.TraceLimit)
	}
	f.byID[id] = len(f.members)
	f.members = append(f.members, m)
	f.roster = append(f.roster, m)
	f.stats.Admitted++
	return id, nil
}

// Evict closes the member and recycles its workspace.
func (f *Fleet) Evict(id int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrFleetClosed
	}
	idx, ok := f.byID[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownMember, id)
	}
	f.removeLocked(idx)
	f.stats.Evicted++
	return nil
}

// capLocked is the admission capacity in force: the elastic effective
// MaxSessions when a controller runs, the configured cap otherwise.
func (f *Fleet) capLocked() int {
	if f.ctrl != nil {
		return f.effMax
	}
	return f.cfg.MaxSessions
}

// removeLocked releases the member at idx and compacts the roster,
// preserving admission order.
func (f *Fleet) removeLocked(idx int) {
	m := f.members[idx]
	f.violBase += m.cs.Result.ViolationsX
	f.eng.releaseCore(m.cs)
	delete(f.byID, m.id)
	f.members = append(f.members[:idx], f.members[idx+1:]...)
	f.roster = append(f.roster[:idx], f.roster[idx+1:]...)
	for i := idx; i < len(f.members); i++ {
		f.byID[f.members[i].id] = i
	}
	// Decay the backpressure signal with the population: lastForced is a
	// per-tick census, and forced computes cannot outnumber members, so a
	// mass eviction must not leave a drained fleet refusing admits on a
	// stale saturation reading until the next tick.
	if f.lastForced > len(f.members) {
		f.lastForced = len(f.members)
	}
}

// FleetStepError is one member's terminal step failure within a tick.
type FleetStepError struct {
	ID    int    `json:"id"`
	Error string `json:"error"`
}

// TickReport is the wire form of one executed fleet tick. The lane
// counters (Skips/Computes/Forced/Shed) count *scheduled* work: a member
// whose κ fails terminally mid-step still appears in its lane — the
// computation was attempted and its cost paid — and additionally in
// Errors.
type TickReport struct {
	Tick     int `json:"tick"`     // 0-based tick index
	Sessions int `json:"sessions"` // members scheduled this tick
	Budget   int `json:"compute_budget,omitempty"`

	Skips    int `json:"skips"`    // policy-chosen zero-input steps
	Computes int `json:"computes"` // full κ computations run (incl. any that failed, see Errors)
	Forced   int `json:"forced"`   // monitor-mandated computes (⊆ computes)
	Shed     int `json:"shed"`     // would-be computes converted to safe skips
	Overrun  int `json:"overrun"`  // forced computes beyond the budget
	Degraded int `json:"degraded,omitempty"` // computes shed by fault or deadline degradation (⊆ shed)

	// Utilization is computes / budget (0 when the budget is unlimited);
	// > 1 reports a forced overrun.
	Utilization float64 `json:"utilization"`
	// ReclaimedRatio is (skips + shed) / sessions: the fraction of the
	// fleet's worst-case κ provisioning this tick handed back — the
	// system-level form of the paper's compute savings.
	ReclaimedRatio float64 `json:"reclaimed_ratio"`
	// ShedBudgetMin is the smallest remaining skip budget among shed
	// members (0 when nothing was shed): the tick's safety headroom.
	ShedBudgetMin int `json:"shed_budget_min,omitempty"`

	// Violations is the fleet-cumulative count of states outside X
	// (Theorem 1: stays 0).
	Violations int `json:"violations"`
	// Errors lists members whose step failed terminally; they were
	// evicted from the fleet before Tick returned.
	Errors []FleetStepError `json:"errors,omitempty"`

	Elapsed time.Duration `json:"elapsed_ns"` // wall time of the whole tick
	// DeadlineMargin is TickDeadline − Elapsed for deadline-bearing fleets
	// (zero when no deadline is configured). Negative means the tick
	// overran — the raw signal the elastic-budget controller regulates on.
	DeadlineMargin time.Duration `json:"deadline_margin_ns,omitempty"`

	// NextBudget is the compute budget the elastic controller set for the
	// next tick; zero on static fleets (Budget reports the budget this
	// tick ran under).
	NextBudget int `json:"next_budget,omitempty"`
	// EffectiveMaxSessions is the elastic admission capacity after this
	// tick (budget.Sessions coupling); zero on static fleets.
	EffectiveMaxSessions int `json:"effective_max_sessions,omitempty"`
}

// Tick advances every member one control period. ws carries this tick's
// measured disturbance per member ID; omitted members (and a nil map) get
// the zero disturbance. A wrong-length disturbance or an unknown ID fails
// the whole tick before anything steps. On context cancellation the tick
// aborts without stepping any member.
//
// Members whose step fails terminally (a κ error — unreachable from
// inside XI, but defended against) are reported in TickReport.Errors and
// evicted; every other member's step is unaffected.
func (f *Fleet) Tick(ctx context.Context, ws map[int][]float64) (TickReport, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return TickReport{}, ErrFleetClosed
	}
	start := time.Now()

	// Validate before staging so a bad request leaves the fleet unstepped.
	for id, w := range ws {
		if _, ok := f.byID[id]; !ok {
			return TickReport{}, fmt.Errorf("%w: %d", ErrUnknownMember, id)
		}
		if w != nil && len(w) != f.eng.NX() {
			return TickReport{}, fmt.Errorf("%w: w[%d] has dim %d, want %d",
				ErrBadDimension, id, len(w), f.eng.NX())
		}
	}
	for _, m := range f.members {
		copy(m.w, f.zero)
	}
	for id, w := range ws {
		if w != nil {
			copy(f.members[f.byID[id]].w, w)
		}
	}

	// TickFrom shares this tick's start with the scheduler so the shedding
	// deadline and the reported DeadlineMargin use one clock origin.
	st, err := f.sch.TickFrom(ctx, f.roster, start)
	if err != nil {
		return TickReport{}, err
	}

	rep := TickReport{
		Tick:     f.stats.Ticks,
		Sessions: st.Members,
		Budget:   f.budget,
		Skips:    st.Skips, Computes: st.Computes, Forced: st.Forced,
		Shed: st.Shed, Overrun: st.Overrun, Degraded: st.Degraded,
		ShedBudgetMin: st.ShedBudgetMin,
	}
	if f.budget > 0 {
		rep.Utilization = float64(st.Computes) / float64(f.budget)
	}
	if st.Members > 0 {
		rep.ReclaimedRatio = float64(st.Skips+st.Shed) / float64(st.Members)
	}

	// Evict members whose step failed terminally, in index order so the
	// outcome is deterministic.
	if st.Errors > 0 {
		errs := f.sch.Errs()
		for i := len(f.members) - 1; i >= 0; i-- {
			if errs[i] == nil {
				continue
			}
			rep.Errors = append(rep.Errors, FleetStepError{ID: f.members[i].id, Error: errs[i].Error()})
			f.removeLocked(i)
			f.stats.Evicted++
		}
		// Reverse to ascending-ID order (built walking indices downward).
		for l, r := 0, len(rep.Errors)-1; l < r; l, r = l+1, r-1 {
			rep.Errors[l], rep.Errors[r] = rep.Errors[r], rep.Errors[l]
		}
	}
	rep.Violations = f.violationsLocked()

	f.lastForced = st.Forced
	if f.budget > 0 {
		f.budgetTicks += int64(f.budget)
	}
	f.stats.Ticks++
	f.stats.Steps += int64(st.Members)
	f.stats.Skips += int64(st.Skips)
	f.stats.Computes += int64(st.Computes)
	f.stats.Forced += int64(st.Forced)
	f.stats.Shed += int64(st.Shed)
	f.stats.Overrun += int64(st.Overrun)
	f.stats.Degraded += int64(st.Degraded)
	rep.Elapsed = time.Since(start)
	if f.cfg.TickDeadline > 0 {
		rep.DeadlineMargin = f.cfg.TickDeadline - rep.Elapsed
	}
	f.tickTime += rep.Elapsed

	// The elastic loop closes here: the tick's measured margin and forced
	// demand feed the PI controller, whose output becomes the next tick's
	// budget; the admission side scales capacity from the same evidence.
	if f.ctrl != nil {
		next := f.ctrl.Update(budget.Input{Margin: rep.DeadlineMargin, Forced: st.Forced})
		f.budget = next
		f.sch.SetComputeBudget(next)
		rep.NextBudget = next
		pressure := 0.0
		if next > 0 {
			pressure = float64(st.Forced) / float64(next)
		}
		f.effMax = budget.Sessions(f.cfg.MaxSessions, rep.ReclaimedRatio, pressure)
		rep.EffectiveMaxSessions = f.effMax
	}
	return rep, nil
}

func (f *Fleet) violationsLocked() int {
	v := f.violBase
	for _, m := range f.members {
		v += m.cs.Result.ViolationsX
	}
	return v
}

// Pressure returns the backpressure signal admission control uses: the
// fraction of the compute budget the last tick's monitor-forced
// computations consumed (0 with an unlimited budget; ≥ 1 means saturated
// and Admit is rejecting).
func (f *Fleet) Pressure() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.budget <= 0 {
		return 0
	}
	return float64(f.lastForced) / float64(f.budget)
}

// Size returns the number of live members.
func (f *Fleet) Size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.members)
}

// IDs returns the live member IDs in admission (ascending) order.
func (f *Fleet) IDs() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]int, len(f.members))
	for i, m := range f.members {
		out[i] = m.id
	}
	return out
}

// FleetMemberInfo is a wire snapshot of one fleet member.
type FleetMemberInfo struct {
	ID         int       `json:"id"`
	T          int       `json:"t"`
	X          []float64 `json:"x"`
	Level      string    `json:"level"`
	SkipBudget int       `json:"skip_budget"` // largest k with x ∈ S_k
	Skips      int       `json:"skips"`
	Runs       int       `json:"runs"`
	Forced     int       `json:"forced"`
	Violations int       `json:"violations"`
	Degraded   int       `json:"degraded,omitempty"` // κ failures downgraded to certified skips
	Energy     float64   `json:"energy"`
}

// MemberTrace materializes the recorded episode of one member (from its
// admission to its latest tick). It returns ErrNotTracing unless the
// fleet was created with FleetConfig.Trace; an evicted member's recording
// is dropped with it.
func (f *Fleet) MemberTrace(id int) (*Trace, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrFleetClosed
	}
	idx, ok := f.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownMember, id)
	}
	if f.members[idx].rec == nil {
		return nil, ErrNotTracing
	}
	return f.members[idx].rec.Trace(), nil
}

// Member returns a snapshot of the member with the given ID.
func (f *Fleet) Member(id int) (FleetMemberInfo, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return FleetMemberInfo{}, ErrFleetClosed
	}
	idx, ok := f.byID[id]
	if !ok {
		return FleetMemberInfo{}, fmt.Errorf("%w: %d", ErrUnknownMember, id)
	}
	m := f.members[idx]
	x := m.cs.StateView()
	res := m.cs.Result
	return FleetMemberInfo{
		ID: id, T: m.cs.Time(),
		X:          append([]float64(nil), x...),
		Level:      f.eng.fw.Monitor().Level(x).String(),
		SkipBudget: f.sb.Remaining(x),
		Skips:      res.Skips, Runs: res.Runs, Forced: res.Forced,
		Violations: res.ViolationsX,
		Degraded:   res.Degraded,
		Energy:     res.Energy,
	}, nil
}

// FleetStats is the fleet's cumulative wire snapshot.
type FleetStats struct {
	Plant       string `json:"plant"`
	Scenario    string `json:"scenario"`
	Policy      string `json:"policy"`
	Sessions    int    `json:"sessions"`
	MaxSessions int    `json:"max_sessions"`
	// Budget is the live per-tick compute budget: the configured value on
	// a static fleet, the controller's current output on an elastic one.
	Budget  int `json:"compute_budget,omitempty"`
	Workers int `json:"workers,omitempty"`
	// EffectiveMaxSessions is the elastic admission capacity in force
	// (MaxSessions scaled by reclaimed ratio and pressure); omitted on
	// static fleets.
	EffectiveMaxSessions int `json:"effective_max_sessions,omitempty"`
	// BudgetRaises/Lowers/Floors count elastic-controller decisions:
	// budget increases, decreases, and forced-floor overrides. All zero
	// on static fleets.
	BudgetRaises int64 `json:"budget_raises,omitempty"`
	BudgetLowers int64 `json:"budget_lowers,omitempty"`
	BudgetFloors int64 `json:"budget_floors,omitempty"`

	Ticks    int   `json:"ticks"`
	Steps    int64 `json:"steps"`
	Skips    int64 `json:"skips"`
	Computes int64 `json:"computes"`
	Forced   int64 `json:"forced"`
	Shed     int64 `json:"shed"`
	Overrun  int64 `json:"overrun"`
	Degraded int64 `json:"degraded,omitempty"`

	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
	Evicted  int64 `json:"evicted"`

	Violations int `json:"violations"`

	// Utilization is mean computes per tick over the budget; Reclaimed-
	// Ratio is (skips + shed) / steps — both 0 until the first tick.
	Utilization    float64 `json:"utilization"`
	ReclaimedRatio float64 `json:"reclaimed_ratio"`
	// Pressure mirrors Fleet.Pressure at snapshot time.
	Pressure float64 `json:"pressure"`

	TickTime time.Duration `json:"tick_time_ns"` // cumulative wall time inside Tick
	Closed   bool          `json:"closed"`
}

// Stats returns the cumulative fleet statistics.
func (f *Fleet) Stats() FleetStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.statsLocked()
}

func (f *Fleet) statsLocked() FleetStats {
	st := f.stats
	st.Plant = f.eng.PlantName()
	st.Scenario = f.eng.ScenarioID()
	st.Policy = f.eng.PolicyName()
	st.Sessions = len(f.members)
	st.MaxSessions = f.cfg.MaxSessions
	st.Budget = f.budget
	st.Workers = f.cfg.Workers
	if f.ctrl != nil {
		st.EffectiveMaxSessions = f.effMax
		cs := f.ctrl.Stats()
		st.BudgetRaises, st.BudgetLowers, st.BudgetFloors = cs.Raises, cs.Lowers, cs.Floors
	}
	st.Violations = f.violationsLocked()
	if f.budgetTicks > 0 {
		st.Utilization = float64(st.Computes) / float64(f.budgetTicks)
	}
	if f.budget > 0 {
		st.Pressure = float64(f.lastForced) / float64(f.budget)
	}
	if st.Steps > 0 {
		st.ReclaimedRatio = float64(st.Skips+st.Shed) / float64(st.Steps)
	}
	st.TickTime = f.tickTime
	st.Closed = f.closed
	return st
}

// Close evicts every member, recycles their workspaces, and marks the
// fleet terminal. Close is idempotent; the error return keeps the
// io.Closer shape.
func (f *Fleet) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	for _, m := range f.members {
		f.violBase += m.cs.Result.ViolationsX
		f.eng.releaseCore(m.cs)
	}
	f.members = nil
	f.roster = nil
	f.byID = map[int]int{}
	f.closed = true
	return nil
}
