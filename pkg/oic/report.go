package oic

// Experiment report wire types: the machine-readable form of the paper's
// evaluation artifacts that `oic -json` emits and CI/dashboards consume.
// internal/exp converts its aggregates into these; the shapes here are
// plain data so external tooling can parse them without this module.

// Histogram is a fixed-bin histogram on the wire: Counts[i] covers
// [Edges[i], Edges[i+1]), with out-of-range mass in Underflow/Overflow.
type Histogram struct {
	Edges     []float64 `json:"edges"`
	Counts    []int     `json:"counts"`
	Underflow int       `json:"underflow"`
	Overflow  int       `json:"overflow"`
}

// Fig4Report is the savings-distribution experiment (paper Fig. 4).
type Fig4Report struct {
	Kind      string `json:"kind"` // "fig4"
	Plant     string `json:"plant"`
	CostLabel string `json:"cost_label"`
	Scenario  string `json:"scenario"`
	Cases     int    `json:"cases"`
	Steps     int    `json:"steps"`
	Seed      int64  `json:"seed"`

	BBHist  Histogram `json:"bb_hist"`
	DRLHist Histogram `json:"drl_hist"`

	BBMeanPct     float64 `json:"bb_mean_saving_pct"`
	DRLMeanPct    float64 `json:"drl_mean_saving_pct"`
	BBEnergyPct   float64 `json:"bb_energy_saving_pct"`
	DRLEnergyPct  float64 `json:"drl_energy_saving_pct"`
	SkipsPer100   float64 `json:"drl_skips_per_100"`
	Violations    int     `json:"violations"`
	TrainEpisodes int     `json:"train_episodes"`
}

// SeriesPointReport is one scenario aggregate of a ladder sweep.
type SeriesPointReport struct {
	ID           string  `json:"id"`
	Detail       string  `json:"detail,omitempty"`
	DRLSavingPct float64 `json:"drl_saving_pct"`
	BBSavingPct  float64 `json:"bb_saving_pct"`
	DRLEnergyPct float64 `json:"drl_energy_saving_pct"`
	SkipsPer100  float64 `json:"skips_per_100"`
	Violations   int     `json:"violations"`
}

// SeriesReport is a scenario-ladder sweep (paper Fig. 5 / Fig. 6).
type SeriesReport struct {
	Kind      string              `json:"kind"` // "series"
	Plant     string              `json:"plant"`
	CostLabel string              `json:"cost_label"`
	Ladder    string              `json:"ladder"`
	Cases     int                 `json:"cases"`
	Steps     int                 `json:"steps"`
	Seed      int64               `json:"seed"`
	Points    []SeriesPointReport `json:"points"`
}

// Table1RowReport is one row of the paper's Table I.
type Table1RowReport struct {
	ID           string  `json:"id"`
	Detail       string  `json:"detail,omitempty"`
	DRLSavingPct float64 `json:"drl_saving_pct"`
	BBSavingPct  float64 `json:"bb_saving_pct"`
}

// Table1Report is the paper's Table I in machine-readable form.
type Table1Report struct {
	Kind  string            `json:"kind"` // "table1"
	Plant string            `json:"plant"`
	Rows  []Table1RowReport `json:"rows"`
}

// TimingReport is the Section IV-A computation-time analysis.
type TimingReport struct {
	Kind             string  `json:"kind"` // "timing"
	Plant            string  `json:"plant"`
	Cases            int     `json:"cases"`
	CtrlPerStepNS    int64   `json:"ctrl_per_step_ns"`
	MonitorPerStepNS int64   `json:"monitor_per_step_ns"`
	SkipsPer100      float64 `json:"skips_per_100"`
	ComputeSavingPct float64 `json:"compute_saving_pct"`
}
