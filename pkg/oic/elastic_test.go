package oic

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestFleetElasticConfigValidation pins NewFleet's elastic validation and
// defaulting: a margin loop needs a deadline, bounds must be ordered, the
// target must fit under the deadline, and omitted knobs take their
// documented defaults.
func TestFleetElasticConfigValidation(t *testing.T) {
	e := accEngine(t)
	bad := []FleetConfig{
		{Elastic: &ElasticConfig{MaxBudget: 32}}, // no TickDeadline
		{TickDeadline: time.Second, Elastic: &ElasticConfig{MinBudget: 64, MaxBudget: 32}},
		{TickDeadline: time.Second, Elastic: &ElasticConfig{MaxBudget: 32, TargetMargin: 2 * time.Second}},
	}
	for i, cfg := range bad {
		if _, err := e.NewFleet(cfg); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("case %d: err = %v, want ErrBadConfig", i, err)
		}
	}
	f, err := e.NewFleet(FleetConfig{
		ComputeBudget: 16, TickDeadline: 100 * time.Millisecond,
		Elastic: &ElasticConfig{MaxBudget: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	el := f.Config().Elastic
	if el.MinBudget != 1 || el.TargetMargin != 20*time.Millisecond {
		t.Fatalf("defaults not applied: %+v", el)
	}
	if got := f.ComputeBudget(); got != 16 {
		t.Fatalf("initial budget %d, want configured 16", got)
	}
}

// TestFleetBudgetRetuneDeterminism is the elastic determinism property:
// a fleet driven through an externally computed budget schedule (the
// controller is pure arithmetic, so identical margin sequences yield
// identical schedules — pinned in internal/budget's own tests) produces
// byte-identical member trajectories and tick accounting for every
// Workers setting. Budget is per-tick state here, retuned between ticks
// via SetComputeBudget exactly as the in-fleet loop does.
func TestFleetBudgetRetuneDeterminism(t *testing.T) {
	e := accEngine(t)
	const n, ticks = 48, 30
	schedule := make([]int, ticks)
	for k := range schedule {
		schedule[k] = 2 + (k*7)%11 // deterministic, hits 2..12
	}
	run := func(workers int) ([]string, FleetStats, []int) {
		f, err := e.NewFleet(FleetConfig{ComputeBudget: schedule[0], Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		ids := make([]int, n)
		dist := make([][][]float64, n)
		for i := 0; i < n; i++ {
			x0, w := fleetCase(t, e, int64(i+1), ticks)
			if ids[i], err = f.Admit(x0); err != nil {
				t.Fatal(err)
			}
			dist[i] = w
		}
		fp := make([]string, n)
		var budgets []int
		for k := 0; k < ticks; k++ {
			f.SetComputeBudget(schedule[k])
			ws := map[int][]float64{}
			for i, id := range ids {
				ws[id] = dist[i][k]
			}
			rep, err := f.Tick(context.Background(), ws)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Budget != schedule[k] {
				t.Fatalf("tick %d ran under budget %d, want %d", k, rep.Budget, schedule[k])
			}
			if rep.Violations != 0 || len(rep.Errors) != 0 {
				t.Fatalf("tick %d: violations=%d errors=%v", k, rep.Violations, rep.Errors)
			}
			budgets = append(budgets, rep.Budget)
			for i, id := range ids {
				mi, err := f.Member(id)
				if err != nil {
					t.Fatal(err)
				}
				fp[i] += fmt.Sprintf("%x;", mi.X)
			}
		}
		return fp, f.Stats(), budgets
	}
	ref, refStats, refBudgets := run(1)
	for _, workers := range []int{3, 16} {
		fp, st, budgets := run(workers)
		for i := range fp {
			if fp[i] != ref[i] {
				t.Fatalf("workers=%d: member %d trajectory differs under retuned budgets", workers, i)
			}
		}
		for k := range budgets {
			if budgets[k] != refBudgets[k] {
				t.Fatalf("workers=%d: budget trajectory differs at tick %d", workers, k)
			}
		}
		if st.Computes != refStats.Computes || st.Skips != refStats.Skips ||
			st.Shed != refStats.Shed || st.Forced != refStats.Forced {
			t.Fatalf("workers=%d: counters differ: %+v vs %+v", workers, st, refStats)
		}
	}
	if refStats.Shed == 0 {
		t.Fatal("retuned budgets as low as 2 shed nothing; schedule not biting")
	}
}

// TestFleetElasticLoop runs the closed loop for real: a generous deadline
// so margins sit far above target, which must drive the budget up toward
// MaxBudget while every invariant holds — budget within bounds (or at the
// forced floor), effective capacity within the coupling's clamp, zero
// violations, and controller counters visible in stats.
func TestFleetElasticLoop(t *testing.T) {
	e := accEngine(t)
	const n, ticks = 32, 40
	f, err := e.NewFleet(FleetConfig{
		ComputeBudget: 4,
		MaxSessions:   64,
		TickDeadline:  time.Second, // generous: margins ≈ full deadline
		Elastic:       &ElasticConfig{MinBudget: 2, MaxBudget: 24, TargetMargin: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ids := make([]int, n)
	dist := make([][][]float64, n)
	for i := 0; i < n; i++ {
		x0, w := fleetCase(t, e, int64(i+1), ticks)
		if ids[i], err = f.Admit(x0); err != nil {
			t.Fatal(err)
		}
		dist[i] = w
	}
	for k := 0; k < ticks; k++ {
		ws := map[int][]float64{}
		for i, id := range ids {
			ws[id] = dist[i][k]
		}
		rep, err := f.Tick(context.Background(), ws)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Violations != 0 || len(rep.Errors) != 0 {
			t.Fatalf("tick %d: violations=%d errors=%v", k, rep.Violations, rep.Errors)
		}
		if rep.NextBudget < 2 && rep.NextBudget < rep.Forced {
			t.Fatalf("tick %d: NextBudget %d below MinBudget and forced floor", k, rep.NextBudget)
		}
		if rep.NextBudget > 24 && rep.NextBudget != rep.Forced {
			t.Fatalf("tick %d: NextBudget %d above MaxBudget without floor", k, rep.NextBudget)
		}
		if rep.EffectiveMaxSessions < 32 || rep.EffectiveMaxSessions > 96 {
			t.Fatalf("tick %d: EffectiveMaxSessions %d outside [½, 3/2]×64", k, rep.EffectiveMaxSessions)
		}
	}
	st := f.Stats()
	if st.Budget != 24 {
		t.Fatalf("final budget %d, want MaxBudget 24 under huge margins", st.Budget)
	}
	if st.BudgetRaises == 0 {
		t.Fatalf("no raises recorded: %+v", st)
	}
	if st.EffectiveMaxSessions == 0 {
		t.Fatal("EffectiveMaxSessions missing from elastic stats")
	}
	if f.Pressure() > 1 {
		t.Fatalf("pressure %v > 1 at MaxBudget", f.Pressure())
	}
}

// Regression for the stale-backpressure bug: a saturated lastForced used
// to survive a mass eviction, so a drained fleet kept refusing admits
// with ErrFleetOverloaded until the next tick. Eviction now decays the
// signal with the population.
func TestFleetAdmitAfterMassEviction(t *testing.T) {
	e := accEngine(t)
	f, err := e.NewFleet(FleetConfig{ComputeBudget: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	x0, _ := fleetCase(t, e, 1, 1)
	var ids []int
	for i := 0; i < 3; i++ {
		id, err := f.Admit(x0)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	f.mu.Lock()
	f.lastForced = 2 // simulate a saturated tick
	f.mu.Unlock()
	if _, err := f.Admit(x0); !errors.Is(err, ErrFleetOverloaded) {
		t.Fatalf("Admit under saturation: %v, want ErrFleetOverloaded", err)
	}
	for _, id := range ids {
		if err := f.Evict(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Admit(x0); err != nil {
		t.Fatalf("Admit after mass eviction: %v, want success (stale lastForced)", err)
	}
	if p := f.Pressure(); p >= 1 {
		t.Fatalf("Pressure() = %v after drain, want < 1", p)
	}
}

// TestFleetResumeAfterBudgetChanges is the recovery claim of the elastic
// design: budget history needs no durability because journal replay
// re-executes the *recorded* compute choices via StepWithChoice. A fleet
// whose budget was retuned mid-run resumes to a byte-identical head in a
// fresh fleet with a different (even static) budget.
func TestFleetResumeAfterBudgetChanges(t *testing.T) {
	e := accEngine(t)
	const n, ticks = 8, 24
	ref, err := e.NewFleet(FleetConfig{ComputeBudget: 6, Workers: 3, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	ids := make([]int, n)
	dist := make([][][]float64, n)
	for i := 0; i < n; i++ {
		x0, w := fleetCase(t, e, int64(200+i), ticks)
		if ids[i], err = ref.Admit(x0); err != nil {
			t.Fatal(err)
		}
		dist[i] = w
	}
	for k := 0; k < ticks; k++ {
		switch k {
		case 6:
			ref.SetComputeBudget(2) // starve mid-run
		case 12:
			ref.SetComputeBudget(0) // unlimited
		case 18:
			ref.SetComputeBudget(3)
		}
		ws := map[int][]float64{}
		for i, id := range ids {
			ws[id] = dist[i][k]
		}
		if _, err := ref.Tick(context.Background(), ws); err != nil {
			t.Fatalf("tick %d: %v", k, err)
		}
	}

	rec, err := e.NewFleet(FleetConfig{ComputeBudget: 96, Workers: 1, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	for _, id := range ids {
		tr, err := ref.MemberTrace(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := rec.ResumeMember(id, tr); err != nil {
			t.Fatalf("resume member %d: %v", id, err)
		}
	}
	for _, id := range ids {
		want, err := ref.Member(id)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rec.Member(id)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%x", got.X) != fmt.Sprintf("%x", want.X) || got.T != want.T {
			t.Fatalf("member %d head diverged after budget-churn resume:\n got %+v\nwant %+v", id, got, want)
		}
		if got.Skips != want.Skips || got.Runs != want.Runs || got.Forced != want.Forced {
			t.Fatalf("member %d counters diverged: got %+v want %+v", id, got, want)
		}
	}
}
