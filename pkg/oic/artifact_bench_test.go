package oic

import (
	"testing"

	"oic/internal/acc"
)

// BenchmarkNewEngine measures the cold-build cost an engine pays once
// per process: the full offline synthesis pipeline (constraint
// tightening, terminal set, feasible-set projection, X′ computation) via
// the uncached acc.NewModel. The facade's NewEngine memoizes the model
// process-wide, so benchmarking NewEngine directly would time a cache
// hit — this is the cost that cache (and the artifact store across
// processes) amortizes. Compare against BenchmarkEngineLoad: the
// cold-boot vs warm-boot gap is the artifact subsystem's payoff.
func BenchmarkNewEngine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := acc.NewModel(acc.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineLoad measures the warm-boot path: decoding a persisted
// artifact and reconstructing a serving engine from it (precompiled
// sets, restored skip chain, no set synthesis, no training) — what oicd
// pays per engine when -artifact-dir hits or -preload materializes the
// catalogue.
func BenchmarkEngineLoad(b *testing.B) {
	eng := accEngine(b)
	a, err := eng.Artifact()
	if err != nil {
		b.Fatal(err)
	}
	raw, err := EncodeArtifact(a)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a2, err := DecodeArtifact(raw)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := LoadEngine(a2); err != nil {
			b.Fatal(err)
		}
	}
}
