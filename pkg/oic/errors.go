package oic

import (
	"errors"

	"oic/internal/controller"
	"oic/internal/core"
	"oic/internal/plant"
)

// Sentinel errors of the public API. All are errors.Is-able through every
// wrapping the facade and the oicd server apply; the first three re-export
// the runtime's own sentinels so internal and facade callers agree on
// identity.
var (
	// ErrInfeasible: the controller's optimization admits no
	// constraint-satisfying input at the current state.
	ErrInfeasible = controller.ErrInfeasible
	// ErrUnsafe: a state lies outside the safe set the operation requires
	// (e.g. a session start outside XI).
	ErrUnsafe = core.ErrUnsafe
	// ErrSessionClosed: the session was closed — explicitly or by a
	// terminal failure — and refuses further steps.
	ErrSessionClosed = core.ErrSessionClosed
	// ErrUnknownPlant: the plant name is not in the registry.
	ErrUnknownPlant = plant.ErrUnknownPlant
	// ErrUnknownScenario: the plant has no scenario with that ID.
	ErrUnknownScenario = plant.ErrUnknownScenario

	// ErrUnknownPolicy: the policy name is not a built-in (or PolicyDRL
	// was requested from an engine built without it).
	ErrUnknownPolicy = errors.New("oic: unknown policy")
	// ErrBadDimension: a state or disturbance vector has the wrong length
	// for the plant.
	ErrBadDimension = errors.New("oic: wrong vector dimension")

	// ErrBadConfig: a configuration is internally inconsistent (e.g.
	// FleetConfig.Elastic without a TickDeadline, or inverted budget
	// bounds).
	ErrBadConfig = errors.New("oic: bad configuration")

	// ErrFleetClosed: the fleet was closed and refuses every operation.
	ErrFleetClosed = errors.New("oic: fleet closed")
	// ErrFleetFull: admission control rejected the session — the fleet is
	// at its MaxSessions capacity.
	ErrFleetFull = errors.New("oic: fleet at session capacity")
	// ErrFleetOverloaded: admission control rejected the session under
	// backpressure — the last tick's monitor-forced computations alone
	// met or exceeded the compute budget, so the fleet cannot absorb more
	// mandatory work.
	ErrFleetOverloaded = errors.New("oic: fleet overloaded (forced computes saturate the budget)")
	// ErrUnknownMember: no fleet member has the given ID.
	ErrUnknownMember = errors.New("oic: unknown fleet member")

	// ErrNotTracing: the session or fleet member has no episode recording
	// (StartTrace was never called / FleetConfig.Trace is off).
	ErrNotTracing = errors.New("oic: not tracing")
	// ErrTraceLimit: the episode recording reached its step limit; the
	// session refuses further steps rather than truncating its trace.
	ErrTraceLimit = errors.New("oic: trace limit reached")
	// ErrTraceMismatch: the trace's engine fingerprint (plant, scenario,
	// dimensions, disturbance memory) does not match the engine asked to
	// replay or audit it.
	ErrTraceMismatch = errors.New("oic: trace does not match engine")
	// ErrResumeMismatch: crash-recovery replay-to-head could not reproduce
	// the recorded episode bit-for-bit — the journal and the rebuilt engine
	// disagree, so the recovered session must not serve.
	ErrResumeMismatch = errors.New("oic: resume replay diverged from recorded episode")
	// ErrSessionFrozen: the session is frozen for a migration handoff and
	// refuses steps until Unfreeze (migration aborted) or Close (migration
	// committed on another node).
	ErrSessionFrozen = errors.New("oic: session frozen for migration")
)
