package oic

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// fleetCase draws a deterministic per-member episode: x0 from X′ plus a
// ticks-long disturbance trace.
func fleetCase(t testing.TB, e *Engine, seed int64, ticks int) ([]float64, [][]float64) {
	t.Helper()
	x0, w, err := e.DrawCase(seed, ticks)
	if err != nil {
		t.Fatal(err)
	}
	return x0, w
}

// runFleet admits n members (seeded episodes 1..n) and ticks the fleet to
// completion, returning per-member per-tick state fingerprints and the
// final stats. Fails the test on any step error or safety violation.
func runFleet(t *testing.T, e *Engine, cfg FleetConfig, n, ticks int) ([]string, FleetStats) {
	t.Helper()
	f, err := e.NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ids := make([]int, n)
	traces := make([][][]float64, n)
	for i := 0; i < n; i++ {
		x0, w := fleetCase(t, e, int64(i+1), ticks)
		id, err := f.Admit(x0)
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		ids[i] = id
		traces[i] = w
	}
	fp := make([]string, n)
	ctx := context.Background()
	for tick := 0; tick < ticks; tick++ {
		ws := make(map[int][]float64, n)
		for i, id := range ids {
			ws[id] = traces[i][tick]
		}
		rep, err := f.Tick(ctx, ws)
		if err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
		if len(rep.Errors) != 0 {
			t.Fatalf("tick %d: step errors %v", tick, rep.Errors)
		}
		if rep.Violations != 0 {
			t.Fatalf("tick %d: %d safety violations", tick, rep.Violations)
		}
		for i, id := range ids {
			mi, err := f.Member(id)
			if err != nil {
				t.Fatal(err)
			}
			fp[i] += fmt.Sprintf("%x;", mi.X)
		}
	}
	return fp, f.Stats()
}

// TestFleetDeterministicAcrossWorkers is the acceptance property: for a
// fixed budget, every member's trajectory is byte-identical for any
// worker-pool size — scheduling is a performance knob, never a semantics
// knob. Checked at an unlimited and at a tight budget.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	e := accEngine(t)
	const n, ticks = 48, 30
	for _, budget := range []int{0, 6} {
		var ref []string
		var refStats FleetStats
		for _, workers := range []int{1, 3, 16} {
			fp, st := runFleet(t, e, FleetConfig{ComputeBudget: budget, Workers: workers}, n, ticks)
			if ref == nil {
				ref, refStats = fp, st
				continue
			}
			for i := range fp {
				if fp[i] != ref[i] {
					t.Fatalf("budget=%d: member %d trajectory differs between workers=1 and workers=%d",
						budget, i, workers)
				}
			}
			if st.Computes != refStats.Computes || st.Skips != refStats.Skips ||
				st.Shed != refStats.Shed || st.Forced != refStats.Forced {
				t.Fatalf("budget=%d workers=%d: counters differ: %+v vs %+v",
					budget, workers, st, refStats)
			}
		}
		if budget > 0 && refStats.Shed == 0 {
			t.Fatalf("budget=%d: expected shedding under an always-run policy, got none", budget)
		}
	}
}

// TestFleetUnlimitedBudgetMatchesSessionPath pins the fleet path to the
// plain facade path: with no budget constraint, a fleet member's
// trajectory equals Session.StepMany over the same episode.
func TestFleetUnlimitedBudgetMatchesSessionPath(t *testing.T) {
	e := accEngine(t)
	const n, ticks = 12, 25
	f, err := e.NewFleet(FleetConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ids := make([]int, n)
	traces := make([][][]float64, n)
	x0s := make([][]float64, n)
	for i := 0; i < n; i++ {
		x0s[i], traces[i] = fleetCase(t, e, int64(i+1), ticks)
		if ids[i], err = f.Admit(x0s[i]); err != nil {
			t.Fatal(err)
		}
	}
	fleetStates := make([][]string, n)
	ctx := context.Background()
	for tick := 0; tick < ticks; tick++ {
		ws := map[int][]float64{}
		for i, id := range ids {
			ws[id] = traces[i][tick]
		}
		if _, err := f.Tick(ctx, ws); err != nil {
			t.Fatal(err)
		}
		for i, id := range ids {
			mi, err := f.Member(id)
			if err != nil {
				t.Fatal(err)
			}
			fleetStates[i] = append(fleetStates[i], fmt.Sprintf("%x", mi.X))
		}
	}
	for i := 0; i < n; i++ {
		plain := trajectory(t, e, x0s[i], traces[i])
		for tick, r := range plain {
			if got := fleetStates[i][tick]; got != fmt.Sprintf("%x", r.X) {
				t.Fatalf("member %d diverges from session path at tick %d", i, tick)
			}
		}
	}
}

// TestFleetOverloadSafety is the 10×-admission-pressure acceptance test:
// admissions beyond capacity are rejected cleanly, and the members that
// were admitted survive a starved compute budget with zero safety
// violations and zero ErrUnsafe — overload degrades into shedding, never
// into unsafety.
func TestFleetOverloadSafety(t *testing.T) {
	e := accEngine(t)
	const capacity, attempts, ticks = 40, 400, 50
	f, err := e.NewFleet(FleetConfig{ComputeBudget: 4, MaxSessions: capacity})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	var admitted []int
	traces := map[int][][]float64{}
	var full int
	for i := 0; i < attempts; i++ {
		x0, w := fleetCase(t, e, int64(i+1), ticks)
		id, err := f.Admit(x0)
		switch {
		case err == nil:
			admitted = append(admitted, id)
			traces[id] = w
		case errors.Is(err, ErrFleetFull):
			full++
		default:
			t.Fatalf("admit %d: unexpected error %v", i, err)
		}
	}
	if len(admitted) != capacity || full != attempts-capacity {
		t.Fatalf("admitted %d (want %d), rejected-full %d (want %d)",
			len(admitted), capacity, full, attempts-capacity)
	}

	ctx := context.Background()
	var shed, computes int64
	for tick := 0; tick < ticks; tick++ {
		ws := map[int][]float64{}
		for _, id := range admitted {
			ws[id] = traces[id][tick]
		}
		rep, err := f.Tick(ctx, ws)
		if err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
		for _, se := range rep.Errors {
			t.Errorf("tick %d: member %d failed: %s", tick, se.ID, se.Error)
		}
		if rep.Violations != 0 {
			t.Fatalf("tick %d: %d violations of X (Theorem 1 requires 0)", tick, rep.Violations)
		}
		if rep.Computes > rep.Budget && rep.Overrun != rep.Computes-rep.Budget {
			t.Fatalf("tick %d: computes %d over budget %d without matching overrun %d",
				tick, rep.Computes, rep.Budget, rep.Overrun)
		}
		shed += int64(rep.Shed)
		computes += int64(rep.Computes)
	}
	st := f.Stats()
	if st.Violations != 0 {
		t.Fatalf("final violations %d, want 0", st.Violations)
	}
	if shed == 0 {
		t.Fatal("expected budget-forced shedding under 10× pressure, got none")
	}
	if st.ReclaimedRatio <= 0.5 {
		t.Fatalf("reclaimed ratio %.2f, want > 0.5 under a starved budget", st.ReclaimedRatio)
	}
	if st.Rejected != int64(attempts-capacity) {
		t.Fatalf("stats.Rejected = %d, want %d", st.Rejected, attempts-capacity)
	}
}

// TestFleetBackpressure covers the overload admission branch: when the
// last tick's forced computations saturate the budget, Admit rejects with
// ErrFleetOverloaded until pressure drops.
func TestFleetBackpressure(t *testing.T) {
	e := accEngine(t)
	f, err := e.NewFleet(FleetConfig{ComputeBudget: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	x0, _ := fleetCase(t, e, 1, 1)
	if _, err := f.Admit(x0); err != nil {
		t.Fatal(err)
	}
	f.mu.Lock()
	f.lastForced = 2 // simulate a saturated tick
	f.mu.Unlock()
	if _, err := f.Admit(x0); !errors.Is(err, ErrFleetOverloaded) {
		t.Fatalf("Admit under saturation: %v, want ErrFleetOverloaded", err)
	}
	if p := f.Pressure(); p != 1 {
		t.Fatalf("Pressure() = %v, want 1", p)
	}
	f.mu.Lock()
	f.lastForced = 0
	f.mu.Unlock()
	if _, err := f.Admit(x0); err != nil {
		t.Fatalf("Admit after pressure drop: %v", err)
	}
}

// TestFleetLifecycleErrors walks the sentinel surface: bad dimensions,
// unknown members, eviction, and closed-fleet behavior.
func TestFleetLifecycleErrors(t *testing.T) {
	e := accEngine(t)
	f, err := e.NewFleet(FleetConfig{MaxSessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Admit([]float64{1}); !errors.Is(err, ErrBadDimension) {
		t.Fatalf("short x0: %v, want ErrBadDimension", err)
	}
	x0, _ := fleetCase(t, e, 1, 1)
	id, err := f.Admit(x0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Tick(context.Background(), map[int][]float64{99: nil}); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("unknown ws id: %v, want ErrUnknownMember", err)
	}
	if _, err := f.Tick(context.Background(), map[int][]float64{id: {1}}); !errors.Is(err, ErrBadDimension) {
		t.Fatalf("short w: %v, want ErrBadDimension", err)
	}
	if _, err := f.Member(99); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("unknown member: %v, want ErrUnknownMember", err)
	}
	if err := f.Evict(id); err != nil {
		t.Fatal(err)
	}
	if err := f.Evict(id); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("double evict: %v, want ErrUnknownMember", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("idempotent close: %v", err)
	}
	if _, err := f.Admit(x0); !errors.Is(err, ErrFleetClosed) {
		t.Fatalf("admit after close: %v, want ErrFleetClosed", err)
	}
	if _, err := f.Tick(context.Background(), nil); !errors.Is(err, ErrFleetClosed) {
		t.Fatalf("tick after close: %v, want ErrFleetClosed", err)
	}
	if st := f.Stats(); !st.Closed || st.Sessions != 0 {
		t.Fatalf("closed stats: %+v", st)
	}
}

// TestEngineSkipBudget exercises the public budget query: states sampled
// from X′ carry budget ≥ 1, the chain depth bounds every answer, and the
// dimension check holds.
func TestEngineSkipBudget(t *testing.T) {
	e := accEngine(t)
	max, err := e.MaxSkipBudget()
	if err != nil {
		t.Fatal(err)
	}
	if max < 1 {
		t.Fatalf("MaxSkipBudget = %d, want ≥ 1", max)
	}
	xs, err := e.SampleInitialStates(3, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		b, err := e.SkipBudget(x)
		if err != nil {
			t.Fatal(err)
		}
		if b < 1 || b > max {
			t.Fatalf("SkipBudget(%v) = %d outside [1, %d] for a state in X′", x, b, max)
		}
	}
	if _, err := e.SkipBudget([]float64{0}); !errors.Is(err, ErrBadDimension) {
		t.Fatalf("short x: %v, want ErrBadDimension", err)
	}
}

// TestFleetMemberInfo checks the snapshot fields a scheduler client reads.
func TestFleetMemberInfo(t *testing.T) {
	e := accEngine(t)
	f, err := e.NewFleet(FleetConfig{ComputeBudget: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	x0, w := fleetCase(t, e, 5, 10)
	id, err := f.Admit(x0)
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 10; tick++ {
		if _, err := f.Tick(context.Background(), map[int][]float64{id: w[tick]}); err != nil {
			t.Fatal(err)
		}
	}
	mi, err := f.Member(id)
	if err != nil {
		t.Fatal(err)
	}
	if mi.T != 10 || mi.ID != id {
		t.Fatalf("member info: %+v", mi)
	}
	if mi.Skips+mi.Runs != 10 {
		t.Fatalf("skips %d + runs %d ≠ 10", mi.Skips, mi.Runs)
	}
	if mi.Violations != 0 {
		t.Fatalf("violations %d, want 0", mi.Violations)
	}
	if got := f.IDs(); len(got) != 1 || got[0] != id {
		t.Fatalf("IDs() = %v", got)
	}
}
