// The paper's headline experiment end to end: adaptive cruise control with
// a robust MPC as the safe controller and a double-DQN skipping policy.
//
// It builds the ACC model (Section IV), trains the DRL agent on the Eq. 8
// sinusoidal front vehicle, and evaluates fuel consumption against the
// RMPC-only and bang-bang baselines on paired random episodes.
//
//	go run ./examples/acc-drl [-cases 25] [-train 120]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"oic/internal/acc"
	"oic/internal/core"
)

func main() {
	cases := flag.Int("cases", 25, "evaluation episodes")
	train := flag.Int("train", 120, "DRL training episodes")
	flag.Parse()

	fmt.Println("building ACC case study (RMPC, XI = feasible set, X')...")
	m, err := acc.NewModel(acc.Config{})
	if err != nil {
		log.Fatal(err)
	}
	sc := acc.Fig4Scenario()

	fmt.Printf("training double DQN on %s for %d episodes...\n", sc.Profile.Name(), *train)
	t0 := time.Now()
	agent, stats, err := m.TrainDRL(sc.Profile, acc.TrainConfig{Episodes: *train, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %v (mean episode reward %.4f, final TD-loss EMA %.5f)\n\n",
		time.Since(t0).Round(time.Millisecond), stats.MeanReward, stats.FinalLossEMA)

	drl := m.DRLPolicy(agent)
	rng := rand.New(rand.NewSource(7))
	x0s, err := m.SampleInitialStates(*cases, rng)
	if err != nil {
		log.Fatal(err)
	}

	var fuelRM, fuelBB, fuelDRL float64
	var skips, violations int
	for _, x0 := range x0s {
		vf := sc.Profile.Generate(rng, acc.EpisodeSteps)
		epRM, err := m.RunEpisode(core.AlwaysRun{}, x0, vf, nil)
		if err != nil {
			log.Fatal(err)
		}
		epBB, err := m.RunEpisode(core.BangBang{}, x0, vf, nil)
		if err != nil {
			log.Fatal(err)
		}
		epDR, err := m.RunEpisode(drl, x0, vf, nil)
		if err != nil {
			log.Fatal(err)
		}
		fuelRM += epRM.Fuel
		fuelBB += epBB.Fuel
		fuelDRL += epDR.Fuel
		skips += epDR.Result.Skips
		violations += epRM.Result.ViolationsX + epBB.Result.ViolationsX + epDR.Result.ViolationsX
	}
	n := float64(*cases)
	fmt.Printf("mean fuel over %d paired episodes (100 steps each):\n", *cases)
	fmt.Printf("  RMPC-only:              %6.2f mL\n", fuelRM/n)
	fmt.Printf("  bang-bang (Eq. 7):      %6.2f mL  (%.1f%% saving)\n",
		fuelBB/n, 100*(fuelRM-fuelBB)/fuelRM)
	fmt.Printf("  opportunistic DRL:      %6.2f mL  (%.1f%% saving)\n",
		fuelDRL/n, 100*(fuelRM-fuelDRL)/fuelRM)
	fmt.Printf("DRL skipped %.1f/100 steps on average; safety violations: %d\n",
		float64(skips)/n, violations)
}
