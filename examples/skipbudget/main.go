// Skip budgets and weakly-hard guarantees: generalizing the strengthened
// safe set X′ to a chain S₁ ⊇ S₂ ⊇ … where x ∈ S_k certifies that k
// consecutive control skips are safe without any monitoring in between —
// the bridge between the paper's framework and (m, K) weakly-hard
// scheduling of control tasks.
//
// The example prints the budget chain for the ACC case study, runs the
// budget-aware policy against bang-bang, and reports the weakly-hard
// profile of the executed skip patterns.
//
//	go run ./examples/skipbudget
package main

import (
	"fmt"
	"log"
	"math/rand"

	"oic/internal/acc"
	"oic/internal/core"
	"oic/internal/reach"
)

func main() {
	m, err := acc.NewModel(acc.Config{})
	if err != nil {
		log.Fatal(err)
	}

	const maxBudget = 8
	chain, err := reach.ConsecutiveSkipSets(m.Sets.XI, m.Sys, maxBudget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("skip-budget chain for the ACC case study (X' = S1):\n")
	for k, s := range chain {
		area, err := s.Volume2D()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  S%-2d %2d halfspaces, area %7.1f  — %d consecutive skips certified\n",
			k+1, s.NumRows(), area, k+1)
	}

	// Compare bang-bang with the budget policy that keeps a 2-step margin.
	sc := acc.Fig4Scenario()
	rng := rand.New(rand.NewSource(3))
	x0s, err := m.SampleInitialStates(10, rng)
	if err != nil {
		log.Fatal(err)
	}
	budget := &core.BudgetPolicy{SkipSets: chain, MinBudget: 2}

	type agg struct {
		fuel, energy float64
		misses3      int // worst misses in any 3-step window
		forced       int
	}
	run := func(p core.SkipPolicy) agg {
		var a agg
		rr := rand.New(rand.NewSource(17))
		for _, x0 := range x0s {
			vf := sc.Profile.Generate(rr, acc.EpisodeSteps)
			ep, err := m.RunEpisode(p, x0, vf, nil)
			if err != nil {
				log.Fatal(err)
			}
			if ep.Result.ViolationsX != 0 {
				log.Fatalf("%s violated X", p.Name())
			}
			a.fuel += ep.Fuel
			a.energy += ep.Energy
			a.forced += ep.Result.Forced
			if mw := core.WindowMisses(ep.Result.Records, 3); mw > a.misses3 {
				a.misses3 = mw
			}
		}
		return a
	}

	always := run(core.AlwaysRun{})
	bang := run(core.BangBang{})
	bud := run(budget)

	fmt.Printf("\n%-16s %10s %10s %18s %8s\n", "policy", "fuel", "energy", "max misses (K=3)", "forced")
	fmt.Printf("%-16s %10.2f %10.1f %18d %8d\n", "always-run", always.fuel/10, always.energy/10, always.misses3, always.forced)
	fmt.Printf("%-16s %10.2f %10.1f %18d %8d\n", "bang-bang", bang.fuel/10, bang.energy/10, bang.misses3, bang.forced)
	fmt.Printf("%-16s %10.2f %10.1f %18d %8d\n", budget.Name(), bud.fuel/10, bud.energy/10, bud.misses3, bud.forced)
	fmt.Printf("\nthe budget policy trades a few skips for fewer monitor-forced slams,\n")
	fmt.Printf("and every pattern above satisfies the (m,K) profile its S_k membership certifies.\n")
}
