// Framework generality beyond driving: a room thermostat that skips heater
// control computations when the room is provably going to stay within the
// comfort band.
//
// State: (temperature deviation from setpoint, heater core temperature
// deviation). Input: heater power delta. Disturbance: outdoor temperature
// fluctuation and occupancy heat load. Skipping saves both the controller
// computation and actuator switching.
//
//	go run ./examples/thermostat
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"oic/internal/controller"
	"oic/internal/core"
	"oic/internal/lti"
	"oic/internal/mat"
	"oic/internal/poly"
	"oic/internal/reach"
)

func main() {
	// Two-mass thermal model, Euler-discretized at 30 s:
	// room temperature couples to the heater core; both leak to ambient.
	a := mat.FromRows([][]float64{
		{0.96, 0.05},
		{0.00, 0.90},
	})
	b := mat.FromRows([][]float64{{0}, {0.12}})
	sys := lti.NewSystem(a, b).WithConstraints(
		poly.Box([]float64{-1.5, -6}, []float64{1.5, 6}),       // comfort band ±1.5°C, core ±6°C
		poly.Box([]float64{-3}, []float64{3}),                  // power delta bounds
		poly.Box([]float64{-0.08, -0.1}, []float64{0.08, 0.1}), // weather/occupancy noise
	)

	k, err := controller.LQR(sys.A, sys.B,
		mat.Diag([]float64{4, 0.2}), mat.Identity(1), 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	kappa := controller.NewAffineFeedback(k, nil, nil)

	acl, ccl := sys.ClosedLoop(k, mat.Vec{0, 0}, mat.Vec{0})
	admissible := poly.New(sys.U.A.Mul(k), sys.U.B.Clone())
	xi, err := reach.MaximalInvariantSet(
		poly.Intersect(sys.X, admissible).ReduceRedundancy(), acl, ccl, sys.W, reach.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sets, err := core.ComputeSafetySets(sys, xi)
	if err != nil {
		log.Fatal(err)
	}

	// Daily-cycle weather disturbance with noise: a persistent cold snap
	// (negative bias) drives the room toward the comfort boundary so the
	// monitor has to force heater interventions.
	rng := rand.New(rand.NewSource(11))
	dist := func(t int) mat.Vec {
		phase := 2 * math.Pi * float64(t) / 240 // one cycle per 2 hours of steps
		return mat.Vec{
			-0.04 + 0.04*math.Sin(phase)*(0.5+0.5*rng.Float64()),
			0.1 * (2*rng.Float64() - 1),
		}
	}

	x0 := mat.Vec{0.5, 0}
	const steps = 480 // 4 hours
	run := func(p core.SkipPolicy) *core.Result {
		fw, err := core.NewFramework(sys, kappa, sets, p, 1)
		if err != nil {
			log.Fatal(err)
		}
		res, err := fw.Run(x0, steps, dist)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	always := run(core.AlwaysRun{})
	bang := run(core.BangBang{})

	fmt.Println("thermostat with guaranteed comfort band (±1.5°C):")
	fmt.Printf("  always-run: energy %8.2f, controller calls %d\n", always.Energy, always.ControllerCalls)
	fmt.Printf("  bang-bang:  energy %8.2f, controller calls %d, skips %d/%d, violations %d\n",
		bang.Energy, bang.ControllerCalls, bang.Skips, steps, bang.ViolationsX)
	fmt.Printf("  savings: %.1f%% energy, %.1f%% controller invocations\n",
		100*(always.Energy-bang.Energy)/always.Energy,
		100*float64(always.ControllerCalls-bang.ControllerCalls)/float64(always.ControllerCalls))
}
