// Framework generality beyond driving: a room thermostat that skips heater
// control computations when the room is provably going to stay within the
// comfort band.
//
// The plant itself now lives in internal/thermo as a first-class case
// study of the scenario engine (run `go run ./cmd/oic -plant thermo all`
// for the full evaluation); this example drives one cold-snap afternoon
// directly to show the plant API.
//
//	go run ./examples/thermostat
package main

import (
	"fmt"
	"log"
	"math/rand"

	"oic/internal/core"
	"oic/internal/plant"
	"oic/internal/thermo"
)

func main() {
	var p thermo.Plant
	inst, err := p.Instantiate(p.Headline())
	if err != nil {
		log.Fatal(err)
	}

	// One 4-hour afternoon under the cold-snap weather scenario, replayed
	// against both policies for a paired comparison.
	const steps = 480
	rng := rand.New(rand.NewSource(11))
	x0s, err := inst.SampleInitialStates(1, rng)
	if err != nil {
		log.Fatal(err)
	}
	if len(x0s) == 0 {
		log.Fatal("sampling X' returned no states")
	}
	w := inst.Disturbances(rng, steps)

	run := func(pol core.SkipPolicy) *plant.Episode {
		ep, err := inst.RunEpisode(pol, x0s[0], w)
		if err != nil {
			log.Fatal(err)
		}
		return ep
	}

	always := run(core.AlwaysRun{})
	bang := run(core.BangBang{})

	fmt.Println("thermostat with guaranteed comfort band (±1.5°C):")
	fmt.Printf("  always-run: %.3f kWh, controller calls %d\n",
		always.Cost, always.Result.ControllerCalls)
	fmt.Printf("  bang-bang:  %.3f kWh, controller calls %d, skips %d/%d, violations %d\n",
		bang.Cost, bang.Result.ControllerCalls, bang.Result.Skips, steps, bang.Result.ViolationsX)
	if always.Cost > 0 && always.Result.ControllerCalls > 0 {
		fmt.Printf("  savings: %.1f%% energy, %.1f%% controller invocations\n",
			100*(always.Cost-bang.Cost)/always.Cost,
			100*float64(always.Result.ControllerCalls-bang.Result.ControllerCalls)/float64(always.Result.ControllerCalls))
	}
}
