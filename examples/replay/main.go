// Trace record/replay: the runtime's audit trail and what-if machine
// (DESIGN.md §8). The example records one ACC episode through a traced
// session, then
//
//  1. replays it unchanged — a conformance check that must come back
//     byte-identical (the pool resets controllers to cold state, and the
//     whole stack is deterministic);
//
//  2. re-verifies the recorded log offline with the untrusted-execution
//     auditor (internal/audit) and shows how a tampered log is caught;
//
//  3. replays it under a substituted policy and a compute budget — the
//     what-if service: same initial state, same disturbances, different
//     decisions, and a structured diff of the accounting.
//
//     go run ./examples/replay
package main

import (
	"context"
	"fmt"
	"log"

	"oic/pkg/oic"

	_ "oic/internal/acc"
)

func main() {
	eng, err := oic.NewEngine(oic.Config{Plant: "acc", Policy: oic.PolicyAlwaysRun})
	if err != nil {
		log.Fatal(err)
	}

	// Record: a seeded episode through a traced session.
	const steps = 50
	x0, w, err := eng.DrawCase(7, steps)
	if err != nil {
		log.Fatal(err)
	}
	s, err := eng.NewSession(x0)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.StartTrace(0); err != nil {
		log.Fatal(err)
	}
	if _, err := s.StepMany(context.Background(), w); err != nil {
		log.Fatal(err)
	}
	tr, err := s.Trace()
	if err != nil {
		log.Fatal(err)
	}
	s.Close()
	b, err := oic.EncodeTrace(tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %s/%s under %s: %d steps, %d bytes on the wire\n\n",
		tr.Meta.Plant, tr.Meta.Scenario, tr.Meta.Policy, tr.Len(), len(b))

	// Conformance replay: byte-identical or the runtime drifted.
	rep, err := eng.Replay(tr, oic.ReplayOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conformance replay: identical=%v (flips %d, max state divergence %g)\n",
		rep.Diff.Identical, rep.Diff.DecisionFlips, rep.Diff.MaxStateDivergence)

	// Audit: the recorded log re-verified against the declared model and
	// safety sets — and a tampered copy caught.
	au, err := eng.AuditTrace(tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit of the recorded log: clean=%v over %d steps\n", au.Clean, au.Steps)
	tampered := tr.Clone()
	tampered.Steps[10].W[0] += 50 // an out-of-model disturbance
	au2, err := eng.AuditTrace(tampered)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit of a tampered log: clean=%v", au2.Clean)
	for _, f := range au2.Findings {
		fmt.Printf(" [step %d %s]", f.Step, f.Kind)
	}
	fmt.Println()

	// What-if: same episode, bang-bang policy, 8 total κ computes.
	what, err := eng.Replay(tr, oic.ReplayOptions{Policy: oic.PolicyBangBang, ComputeBudget: 8})
	if err != nil {
		log.Fatal(err)
	}
	d := what.Diff
	fmt.Printf("\nwhat-if (bang-bang, budget 8): computes %d→%d, energy %.4g→%.4g, shed %d\n",
		d.ComputesA, d.ComputesB, d.EnergyA, d.EnergyB, what.Shed)
	fmt.Printf("safety under the what-if: XI margin %.4g→%.4g, violations %d (Theorem 1: always 0)\n",
		what.SafetyMarginRecorded, what.SafetyMarginReplayed, what.Violations)
}
