// Service quickstart: drive the public pkg/oic facade — the same API the
// oicd server exposes over HTTP — fully in process.
//
// An Engine is built once per (plant, scenario, policy) and owns the
// expensive artifacts: safety sets, the compiled parametric LP, the skip
// policy. Sessions are cheap pooled handles; a fleet of them advances in
// parallel through StepBatch.
//
//	go run ./examples/service
package main

import (
	"context"
	"fmt"
	"log"

	"oic/pkg/oic"

	_ "oic/internal/acc" // register the plant we serve
)

func main() {
	// One engine: compiled once, shared by every session below.
	eng, err := oic.NewEngine(oic.Config{Plant: "acc", Policy: oic.PolicyBangBang})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine: plant %q scenario %q policy %q (nx=%d nu=%d)\n",
		eng.PlantName(), eng.ScenarioID(), eng.PolicyName(), eng.NX(), eng.NU())

	// A fleet of sessions, each with its own seeded episode.
	const fleet, steps = 16, 100
	ctx := context.Background()
	sessions := make([]*oic.Session, fleet)
	dists := make([][][]float64, fleet)
	for i := range sessions {
		x0, w, err := eng.DrawCase(int64(i+1), steps)
		if err != nil {
			log.Fatal(err)
		}
		if sessions[i], err = eng.NewSession(x0); err != nil {
			log.Fatal(err)
		}
		defer sessions[i].Close()
		dists[i] = w
	}

	// Advance the whole fleet step by step across the worker pool.
	var skips, runs, forced int
	for t := 0; t < steps; t++ {
		batch := make([]oic.BatchStep, fleet)
		for i := range batch {
			batch[i] = oic.BatchStep{Session: sessions[i], W: dists[i][t]}
		}
		for _, r := range eng.StepBatch(ctx, batch, 0) {
			if r.Error != "" {
				log.Fatalf("t=%d: %s", t, r.Error)
			}
			if r.Ran {
				runs++
			} else {
				skips++
			}
			if r.Forced {
				forced++
			}
		}
	}

	var violations int
	var energy float64
	for _, s := range sessions {
		info := s.Info()
		violations += info.Violations
		energy += info.Energy
	}
	total := fleet * steps
	fmt.Printf("fleet:  %d sessions × %d steps = %d session-steps\n", fleet, steps, total)
	fmt.Printf("result: skipped %d (%.1f%%), ran κ %d (monitor-forced %d)\n",
		skips, 100*float64(skips)/float64(total), runs, forced)
	fmt.Printf("safety: %d violations (Theorem 1 requires 0); total energy %.1f\n", violations, energy)
}
