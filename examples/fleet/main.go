// Fleet quickstart: serve a thousand control sessions on a compute budget
// sized for a tenth of them, using the opportunistic fleet scheduler
// (pkg/oic.Fleet, DESIGN.md §7).
//
// The paper's premise is that skipped κ computations are reclaimed
// processor time. The fleet scheduler turns that into capacity: every tick
// it runs each session's cheap monitor+policy decision, executes the
// near-free skip lane, and schedules the remaining κ computations through
// a priority queue ordered by remaining skip budget — sessions about to
// exhaust their S_k chain compute first, and overflow computations of
// budget-rich sessions are shed into guaranteed-safe skips (Theorem 1).
//
//	go run ./examples/fleet
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"oic/pkg/oic"

	_ "oic/internal/acc" // register the plant we serve
)

func main() {
	// Always-run is the scheduler's worst case: every session requests κ
	// every tick, so the compute budget's priority queue does all the
	// work. (With PolicyBangBang sessions only compute when forced —
	// cheaper still, but nothing for the scheduler to shed.)
	eng, err := oic.NewEngine(oic.Config{Plant: "acc", Policy: oic.PolicyAlwaysRun})
	if err != nil {
		log.Fatal(err)
	}

	// 1000 sessions, but compute capacity for only 96 κ runs per tick —
	// under worst-case provisioning this fleet would need 10× the budget.
	const sessions, budget, ticks = 1000, 96, 60
	fleet, err := eng.NewFleet(oic.FleetConfig{ComputeBudget: budget, MaxSessions: sessions})
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Close()

	ids := make([]int, sessions)
	traces := make([][][]float64, sessions)
	for i := range ids {
		x0, w, err := eng.DrawCase(int64(i+1), ticks)
		if err != nil {
			log.Fatal(err)
		}
		if ids[i], err = fleet.Admit(x0); err != nil {
			log.Fatal(err)
		}
		traces[i] = w
	}
	// Admission control: the fleet is full, an extra session is rejected.
	extraX0, _, err := eng.DrawCase(int64(sessions+1), 1)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fleet.Admit(extraX0); !errors.Is(err, oic.ErrFleetFull) {
		log.Fatalf("expected ErrFleetFull, got %v", err)
	}
	max, _ := eng.MaxSkipBudget()
	fmt.Printf("fleet: %d sessions, budget %d κ/tick (%.0f%% of worst case), S_k chain depth %d\n",
		sessions, budget, 100*float64(budget)/float64(sessions), max)

	ctx := context.Background()
	for t := 0; t < ticks; t++ {
		ws := make(map[int][]float64, sessions)
		for i, id := range ids {
			ws[id] = traces[i][t]
		}
		rep, err := fleet.Tick(ctx, ws)
		if err != nil {
			log.Fatal(err)
		}
		if t%15 == 0 {
			fmt.Printf("tick %2d: computes %3d (forced %3d, shed %3d), utilization %4.2f, reclaimed %4.1f%%, %v\n",
				t, rep.Computes, rep.Forced, rep.Shed, rep.Utilization,
				100*rep.ReclaimedRatio, rep.Elapsed.Round(1e5))
		}
	}

	st := fleet.Stats()
	fmt.Printf("\nafter %d ticks × %d sessions = %d session-steps:\n", st.Ticks, sessions, st.Steps)
	fmt.Printf("  κ computes %d (forced %d, shed %d, overrun %d)\n",
		st.Computes, st.Forced, st.Shed, st.Overrun)
	fmt.Printf("  reclaimed-step ratio %.1f%% — the worst-case provisioning handed back\n", 100*st.ReclaimedRatio)
	fmt.Printf("  mean budget utilization %.2f, backpressure %.2f\n", st.Utilization, st.Pressure)
	fmt.Printf("  safety: %d violations (Theorem 1 requires 0)\n", st.Violations)
}
