// Quickstart: wrap an existing safe controller with the opportunistic
// intermittent-control framework in ~60 lines.
//
// The plant is a disturbed double integrator, the safe controller κ is an
// LQR state feedback, and the skipping policy is the bang-bang rule of
// Eq. 7: skip whenever the monitor proves it safe (x ∈ X′).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"oic/internal/controller"
	"oic/internal/core"
	"oic/internal/lti"
	"oic/internal/mat"
	"oic/internal/poly"
	"oic/internal/reach"
)

func main() {
	// Plant: position/velocity double integrator with bounded disturbance.
	a := mat.FromRows([][]float64{{1, 0.1}, {0, 1}})
	b := mat.FromRows([][]float64{{0}, {0.1}})
	sys := lti.NewSystem(a, b).WithConstraints(
		poly.Box([]float64{-5, -3}, []float64{5, 3}),             // safe set X
		poly.Box([]float64{-4}, []float64{4}),                    // input set U
		poly.Box([]float64{-0.03, -0.03}, []float64{0.03, 0.03}), // disturbance W
	)

	// Safe controller κ: LQR feedback u = K·x.
	k, err := controller.LQR(sys.A, sys.B, mat.Identity(2), mat.Identity(1), 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	kappa := controller.NewAffineFeedback(k, nil, nil)

	// Safety sets: XI = maximal robust invariant set of the closed loop
	// (restricted to states where κ's output is admissible), then
	// X′ = B(XI, 0) ∩ XI.
	acl, ccl := sys.ClosedLoop(k, mat.Vec{0, 0}, mat.Vec{0})
	admissible := poly.New(sys.U.A.Mul(k), sys.U.B.Clone())
	xi, err := reach.MaximalInvariantSet(
		poly.Intersect(sys.X, admissible).ReduceRedundancy(), acl, ccl, sys.W, reach.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sets, err := core.ComputeSafetySets(sys, xi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("safety sets: X %d rows, XI %d rows, X' %d rows\n",
		sets.X.NumRows(), sets.XI.NumRows(), sets.XPrime.NumRows())

	// Framework with the bang-bang skipping rule (Eq. 7).
	fw, err := core.NewFramework(sys, kappa, sets, core.BangBang{}, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Simulate 200 steps under random extreme disturbances, against the
	// always-run baseline on the same disturbance sequence.
	rng := rand.New(rand.NewSource(1))
	wSeq := make([]mat.Vec, 200)
	for t := range wSeq {
		wSeq[t] = mat.Vec{0.03 * sign(rng), 0.03 * sign(rng)}
	}
	dist := func(t int) mat.Vec { return wSeq[t] }

	x0 := mat.Vec{1.5, 0.5}
	res, err := fw.Run(x0, 200, dist)
	if err != nil {
		log.Fatal(err)
	}
	base, err := mustFW(sys, kappa, sets, core.AlwaysRun{}).Run(x0, 200, dist)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("bang-bang:  energy %7.2f, skipped %3d/200, monitor-forced %d, violations %d\n",
		res.Energy, res.Skips, res.Forced, res.ViolationsX)
	fmt.Printf("always-run: energy %7.2f, skipped %3d/200\n", base.Energy, base.Skips)
	fmt.Printf("energy saving: %.1f%%  — with safety guaranteed by Theorem 1\n",
		100*(base.Energy-res.Energy)/base.Energy)
}

func mustFW(sys *lti.System, kappa controller.Controller, sets core.SafetySets, p core.SkipPolicy) *core.Framework {
	fw, err := core.NewFramework(sys, kappa, sets, p, 1)
	if err != nil {
		log.Fatal(err)
	}
	return fw
}

func sign(rng *rand.Rand) float64 {
	if rng.Float64() < 0.5 {
		return -1
	}
	return 1
}
