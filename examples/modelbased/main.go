// Model-based skipping (Eq. 6): when the controller κ is analytic and the
// disturbance is known ahead of time, the skipping schedule is optimized
// exactly by a mixed-integer program instead of being learned.
//
// The plant is a disturbed double integrator tracking the origin under an
// LQR feedback; the disturbance is a known sinusoid. The MIP policy plans
// over a receding horizon which steps to skip, minimizing Σ‖u‖₁ while
// keeping every predicted state inside X′.
//
//	go run ./examples/modelbased
package main

import (
	"fmt"
	"log"
	"math"

	"oic/internal/controller"
	"oic/internal/core"
	"oic/internal/lti"
	"oic/internal/mat"
	"oic/internal/poly"
	"oic/internal/reach"
)

func main() {
	a := mat.FromRows([][]float64{{1, 0.1}, {0, 1}})
	b := mat.FromRows([][]float64{{0}, {0.1}})
	sys := lti.NewSystem(a, b).WithConstraints(
		poly.Box([]float64{-5, -3}, []float64{5, 3}),
		poly.Box([]float64{-4}, []float64{4}),
		poly.Box([]float64{-0.04, -0.04}, []float64{0.04, 0.04}),
	)
	k, err := controller.LQR(sys.A, sys.B, mat.Identity(2), mat.Identity(1), 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	kappa := controller.NewAffineFeedback(k, nil, nil)

	acl, ccl := sys.ClosedLoop(k, mat.Vec{0, 0}, mat.Vec{0})
	admissible := poly.New(sys.U.A.Mul(k), sys.U.B.Clone())
	xi, err := reach.MaximalInvariantSet(
		poly.Intersect(sys.X, admissible).ReduceRedundancy(), acl, ccl, sys.W, reach.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sets, err := core.ComputeSafetySets(sys, xi)
	if err != nil {
		log.Fatal(err)
	}

	// A known disturbance: the framework's w(t) is fully predictable here.
	known := func(t int) mat.Vec {
		return mat.Vec{0.04 * math.Sin(float64(t)*0.25), 0}
	}

	mip := &core.ModelBasedPolicy{
		Sys:     core.SysModel{A: sys.A, B: sys.B, C: sys.C},
		Kappa:   kappa,
		XPrime:  sets.XPrime,
		U:       sys.U,
		Horizon: 6,
		KnownW:  known,
	}

	x0 := mat.Vec{1.0, 0.4}
	const steps = 80
	runWith := func(p core.SkipPolicy) *core.Result {
		fw, err := core.NewFramework(sys, kappa, sets, p, 1)
		if err != nil {
			log.Fatal(err)
		}
		res, err := fw.Run(x0, steps, func(t int) mat.Vec { return known(t) })
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	always := runWith(core.AlwaysRun{})
	bang := runWith(core.BangBang{})
	smart := runWith(mip)

	fmt.Printf("%-22s %10s %8s %8s %6s\n", "policy", "energy", "skips", "forced", "viol")
	for _, row := range []struct {
		name string
		r    *core.Result
	}{
		{"always-run", always},
		{"bang-bang (Eq. 7)", bang},
		{"model-based MIP (Eq. 6)", smart},
	} {
		fmt.Printf("%-22s %10.3f %5d/%d %8d %6d\n",
			row.name, row.r.Energy, row.r.Skips, steps, row.r.Forced, row.r.ViolationsX)
	}
	fmt.Printf("\nMIP solver: %d optimal decisions, %d fallbacks, %d B&B nodes total\n",
		mip.Stats().Solved, mip.Stats().Fallbacks, mip.Stats().TotalNodes)
	fmt.Printf("energy saving vs always-run: bang-bang %.1f%%, model-based %.1f%%\n",
		100*(always.Energy-bang.Energy)/always.Energy,
		100*(always.Energy-smart.Energy)/always.Energy)
}
