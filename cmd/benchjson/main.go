// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON benchmark record on stdout, so CI can publish the
// repository's perf trajectory (BENCH_N.json artifacts) without external
// tooling:
//
//	go test -run '^$' -bench RMPCStep -benchmem . | go run ./cmd/benchjson
//
// Every value/unit pair on a benchmark line is captured, so b.ReportMetric
// custom units (e.g. "bb-fuel-saving-%") survive alongside ns/op, B/op,
// and allocs/op.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"` // unit → value (ns/op, B/op, allocs/op, custom)
}

// Report is the emitted JSON document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rep := Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Package = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBenchLine parses "BenchmarkName-8  1234  567 ns/op  8 B/op ..." into
// a Benchmark. Value/unit pairs follow the iteration count.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix go test appends.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
