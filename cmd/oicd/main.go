// Command oicd is the opportunistic intermittent-control session server: a
// long-running HTTP/JSON service over the pkg/oic facade. Clients open
// control sessions against any registered plant and stream measured states
// in; the server answers with Algorithm 1's per-step decision (run κ or
// skip) and the resulting input, sharing each configuration's compiled
// artifacts (safety sets, parametric LP, trained policy) across every
// session. See README.md for a curl transcript and DESIGN.md §6 for the
// architecture.
//
// Usage:
//
//	oicd [-addr :8080] [-ttl 15m] [-max-sessions 4096]
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"oic/internal/server"

	// Register the case studies.
	_ "oic/internal/acc"
	_ "oic/internal/orbit"
	_ "oic/internal/thermo"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	ttl := flag.Duration("ttl", 15*time.Minute, "evict sessions idle longer than this")
	maxSessions := flag.Int("max-sessions", 4096, "maximum live sessions")
	maxEngines := flag.Int("max-engines", 64, "maximum cached engines (distinct session configurations)")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second, "graceful-shutdown drain window")
	flag.Parse()

	srv := server.New(server.Config{SessionTTL: *ttl, MaxSessions: *maxSessions, MaxEngines: *maxEngines})
	srv.StartJanitor()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("oicd: serving on %s (session ttl %v, max %d)", *addr, *ttl, *maxSessions)

	select {
	case err := <-errc:
		log.Fatalf("oicd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("oicd: shutting down (grace %v)", *shutdownGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("oicd: shutdown: %v", err)
	}
	srv.Close()
	log.Printf("oicd: bye")
}
