// Command oicd is the opportunistic intermittent-control session server: a
// long-running HTTP/JSON service over the pkg/oic facade. Clients open
// control sessions against any registered plant and stream measured states
// in; the server answers with Algorithm 1's per-step decision (run κ or
// skip) and the resulting input, sharing each configuration's compiled
// artifacts (safety sets, parametric LP, trained policy) across every
// session. Fleets (/v1/fleets) multiplex thousands of sessions over a
// per-tick compute budget through the opportunistic scheduler. See
// README.md for a curl transcript and DESIGN.md §6–§7 for the
// architecture.
//
// Crash safety: with -journal-dir every acknowledged step is write-ahead
// journaled, and a restart replays the journal to head — /readyz holds
// 503 {"recovering":true} until every pre-crash session is byte-for-byte
// back (DESIGN.md §10).
//
// Observability (DESIGN.md §12): /metrics serves latency and
// deadline-margin histograms, every request carries an X-Oic-Trace-Id
// (minted here when absent), and -log-level/-log-format select
// structured text or JSON logs on stderr.
//
// Usage:
//
//	oicd [-addr :8080] [-ttl 15m] [-max-sessions 4096] [-max-fleets 16]
//	     [-journal-dir /var/lib/oicd/journal] [-journal-sync step]
//	     [-request-timeout 30s] [-pprof 127.0.0.1:6060]
//	     [-log-level info] [-log-format text]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"oic/internal/fault"
	"oic/internal/journal"
	"oic/internal/obs"
	"oic/internal/server"

	// Register the case studies.
	_ "oic/internal/acc"
	_ "oic/internal/orbit"
	_ "oic/internal/thermo"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	ttl := flag.Duration("ttl", 15*time.Minute, "evict sessions and fleets idle longer than this")
	maxSessions := flag.Int("max-sessions", 4096, "maximum live sessions")
	maxEngines := flag.Int("max-engines", 64, "maximum cached engines (distinct session configurations)")
	maxFleets := flag.Int("max-fleets", 16, "maximum live fleets")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second, "graceful-shutdown drain window")
	readTimeout := flag.Duration("read-timeout", 60*time.Second, "full-request read timeout")
	writeTimeout := flag.Duration("write-timeout", 120*time.Second, "response write timeout (batched steps and fleet ticks run inside it)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle timeout")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof on this loopback address (e.g. 127.0.0.1:6060); empty disables")
	artifactDir := flag.String("artifact-dir", "", "on-disk engine artifact store: check before building engines, write back after; empty disables")
	preload := flag.Bool("preload", false, "materialize every artifact in -artifact-dir into the engine cache at boot (/readyz reports 503 until done)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request handling deadline; expiry returns 503 {\"code\":\"deadline\"} (0 disables)")
	journalDir := flag.String("journal-dir", "", "write-ahead journal directory: every acknowledged step is journaled, and a restart replays the journal to head before serving; empty disables")
	journalSync := flag.String("journal-sync", "step", "journal fsync policy: step (every append), tick (once per step/tick request), interval, or none")
	faultSpec := flag.String("fault", "", "deterministic fault injection spec, e.g. \"artifact.read=first:2,journal.append=0.01,sched.compute=after:500\"; empty disables")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the -fault decision streams")
	elastic := flag.Bool("elastic", false, "default fleets with a tick deadline and a finite compute budget into the elastic-budget controller (bounds budget/4 .. budget*4, target margin deadline/5); explicit per-fleet elastic config always wins")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, or error (debug logs every request)")
	logFormat := flag.String("log-format", "text", "log encoding: text or json")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oicd: %v\n", err)
		os.Exit(2)
	}
	log := logger.With("component", "oicd")
	fatal := func(msg string, args ...any) {
		log.Error(msg, args...)
		os.Exit(1)
	}

	srv := server.New(server.Config{
		SessionTTL: *ttl, MaxSessions: *maxSessions,
		MaxEngines: *maxEngines, MaxFleets: *maxFleets,
		RequestTimeout:  *requestTimeout,
		ElasticDefaults: *elastic,
		Logger:          logger,
	})
	srv.StartJanitor()

	if *faultSpec != "" {
		inj, err := fault.Parse(*faultSeed, *faultSpec)
		if err != nil {
			fatal("invalid -fault spec", "error", err)
		}
		srv.SetFaults(inj)
		log.Info("fault injection armed", "spec", inj.String())
	}
	if *preload && *artifactDir == "" {
		fatal("-preload requires -artifact-dir")
	}
	if *artifactDir != "" {
		if err := srv.OpenArtifactStore(*artifactDir); err != nil {
			fatal("opening -artifact-dir", "dir", *artifactDir, "error", err)
		}
		log.Info("artifact store open", "dir", *artifactDir)
	}
	if *journalDir != "" {
		policy, err := journal.ParsePolicy(*journalSync)
		if err != nil {
			fatal("invalid -journal-sync", "error", err)
		}
		if err := srv.OpenJournal(journal.Options{Dir: *journalDir, Policy: policy}); err != nil {
			fatal("opening -journal-dir", "dir", *journalDir, "error", err)
		}
		log.Info("journal open", "dir", *journalDir, "sync_policy", policy.String())
		run, err := srv.BeginJournalRecovery(*journalDir)
		if err != nil {
			fatal("journal recovery", "error", err)
		}
		// Serve (503 on /readyz and the create endpoints) while replay
		// runs, so a restart holds traffic until the pre-crash state is
		// byte-for-byte back.
		go func() {
			rep, err := run()
			if err != nil {
				log.Error("journal recovery failed", "error", err)
				return
			}
			log.Info("journal recovery done",
				"sessions", rep.Sessions, "fleets", rep.Fleets, "members", rep.Members,
				"steps_replayed", rep.StepsReplayed, "skipped", rep.Skipped, "failed", rep.Failed,
				"segments", rep.Segments, "records", rep.Records,
				"torn_tails", rep.TornTails, "orphans", rep.Orphans)
		}()
	}
	if *preload {
		run, err := srv.BeginPreload()
		if err != nil {
			fatal("-preload", "error", err)
		}
		// Serve (503 on /readyz) while the catalogue materializes, so a
		// rolling restart holds traffic instead of rebuilding engines.
		go func() {
			n, err := run()
			if err != nil {
				log.Error("preload failed", "error", err)
				return
			}
			log.Info("preload done", "engines", n, "dir", *artifactDir)
		}()
	}

	// Slowloris hardening: bound every phase of a connection's lifetime.
	// The write timeout is generous because batched-step and fleet-tick
	// requests legitimately compute for seconds.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	if *pprofAddr != "" {
		// Contention profiling is off by default in the runtime; with the
		// debug listener requested, sample mutex contention (1/16 events)
		// and every blocking event ≥ 1ms so /debug/pprof/{mutex,block}
		// carry data.
		runtime.SetMutexProfileFraction(16)
		runtime.SetBlockProfileRate(int(time.Millisecond))
		if err := startPprof(*pprofAddr, log); err != nil {
			fatal("-pprof", "error", err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Info("serving", "addr", *addr, "session_ttl", *ttl,
		"max_sessions", *maxSessions, "max_fleets", *maxFleets)

	select {
	case err := <-errc:
		fatal("serve failed", "error", err)
	case <-ctx.Done():
	}

	log.Info("shutting down", "grace", *shutdownGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Warn("shutdown", "error", err)
	}
	srv.Close()
	log.Info("bye")
}

// startPprof serves net/http/pprof on its own listener, separate from the
// API mux so profiling is never reachable through the public address. The
// address must resolve to a loopback interface — profiles leak heap
// contents and must not be exposed.
func startPprof(addr string, log *slog.Logger) error {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("invalid address %q: %w", addr, err)
	}
	if ip := net.ParseIP(host); ip != nil {
		if !ip.IsLoopback() {
			return fmt.Errorf("address %q is not a loopback interface", addr)
		}
	} else if host != "localhost" {
		return fmt.Errorf("address %q is not a loopback interface", addr)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Info("pprof serving", "url", fmt.Sprintf("http://%s/debug/pprof/", ln.Addr()))
	go func() {
		// ReadHeaderTimeout quiets gosec; the listener is loopback-only.
		s := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		if err := s.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Error("pprof serve failed", "error", err)
		}
	}()
	return nil
}
