package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"oic/pkg/oic"
)

// TestCrashRecoverySmoke is the end-to-end chaos test: build the real
// oicd binary, serve a journaled workload under deterministic κ-compute
// fault injection, SIGKILL the process mid-tick (no shutdown path runs),
// restart it on the same journal directory, and require the recovered
// session to be byte-identical — same snapshot, same binary trace — with
// the restart's log attesting the replay. The fleet runs degraded:
// injected solver faults shed to certified-safe skips (zero violations)
// and the mid-tick kill leaves a torn or partial tick the replay must
// absorb.
func TestCrashRecoverySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test; skipped in -short")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "oicd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building oicd: %v\n%s", err, out)
	}

	journalDir := filepath.Join(tmp, "journal")
	addr := freeAddr(t)
	base := "http://" + addr

	// Phase 1: serve and journal a session + a degraded fleet under
	// injected κ faults, then SIGKILL mid-tick.
	proc1, _ := startOicd(t, bin, addr, journalDir,
		"-fault", "sched.compute=0.1", "-fault-seed", "9")
	waitHealthy(t, base, 30*time.Second)

	var info oic.SessionInfo
	doJSON(t, base, "POST", "/v1/sessions",
		oic.CreateSessionRequest{Plant: "acc", Policy: oic.PolicyBangBang, Seed: 3, Trace: true}, &info)
	const steps = 200
	var last oic.StepResult
	for i := 0; i < steps; i++ {
		w := []float64{0.05 * math.Sin(float64(i)), 0.03 * math.Cos(float64(2 * i))}
		doJSON(t, base, "POST", "/v1/sessions/"+info.ID+"/step", oic.StepRequest{W: w}, &last)
	}
	var preInfo oic.SessionInfo
	doJSON(t, base, "GET", "/v1/sessions/"+info.ID, nil, &preInfo)
	preTrace := doRaw(t, base, "/v1/sessions/"+info.ID+"/trace?format=binary")

	// A degraded fleet under 10% κ-compute fault injection: faults on
	// optional computes shed to certified-safe skips instead of evicting.
	const members, syncTicks = 16, 30
	var fleetInfo oic.FleetInfo
	doJSON(t, base, "POST", "/v1/fleets", oic.CreateFleetRequest{
		Plant: "acc", Policy: "always-run", Size: members, Seed: 11, Degrade: true,
	}, &fleetInfo)
	var tickResp oic.FleetTickResponse
	doJSON(t, base, "POST", "/v1/fleets/"+fleetInfo.ID+"/tick",
		oic.FleetTickRequest{Ticks: syncTicks}, &tickResp)
	var preFleet oic.FleetInfo
	doJSON(t, base, "GET", "/v1/fleets/"+fleetInfo.ID, nil, &preFleet)
	if preFleet.Degraded == 0 {
		t.Fatalf("no degraded computes after %d faulted ticks: %+v", syncTicks, preFleet)
	}
	if preFleet.Violations != 0 || preFleet.Evicted != 0 {
		t.Fatalf("degraded mode broke the safety invariant: %+v", preFleet)
	}

	// Hammer ticks from a goroutine so the SIGKILL lands mid-tick; the
	// journal's head is then a partial tick (some member steps durable,
	// some not) the recovery must absorb.
	hammerDone := make(chan struct{})
	go func() {
		defer close(hammerDone)
		for {
			req, _ := json.Marshal(oic.FleetTickRequest{Ticks: 1})
			resp, err := http.Post(base+"/v1/fleets/"+fleetInfo.ID+"/tick",
				"application/json", bytes.NewReader(req))
			if err != nil {
				return // the process died under us — mission accomplished
			}
			resp.Body.Close()
		}
	}()
	time.Sleep(80 * time.Millisecond)
	if err := proc1.Process.Kill(); err != nil { // SIGKILL: no graceful path
		t.Fatal(err)
	}
	_ = proc1.Wait()
	<-hammerDone

	// Phase 2: restart on the same journal; recovery must replay to head.
	proc2, logs2 := startOicd(t, bin, addr, journalDir)
	waitHealthy(t, base, 30*time.Second)

	var postInfo oic.SessionInfo
	doJSON(t, base, "GET", "/v1/sessions/"+info.ID, nil, &postInfo)
	if postInfo.T != preInfo.T || postInfo.Skips != preInfo.Skips ||
		postInfo.Forced != preInfo.Forced || postInfo.Violations != preInfo.Violations {
		t.Fatalf("recovered info %+v != pre-kill %+v", postInfo, preInfo)
	}
	for i := range preInfo.X {
		if math.Float64bits(postInfo.X[i]) != math.Float64bits(preInfo.X[i]) {
			t.Fatalf("recovered x[%d] = %x, want %x", i, postInfo.X[i], preInfo.X[i])
		}
	}
	postTrace := doRaw(t, base, "/v1/sessions/"+info.ID+"/trace?format=binary")
	if !bytes.Equal(postTrace, preTrace) {
		t.Fatalf("recovered binary trace differs: %d bytes vs %d", len(postTrace), len(preTrace))
	}
	// The recovered session keeps serving.
	var next oic.StepResult
	doJSON(t, base, "POST", "/v1/sessions/"+info.ID+"/step", oic.StepRequest{}, &next)
	if next.T != steps {
		t.Fatalf("post-recovery step at t=%d, want %d", next.T, steps)
	}

	// The fleet is back with every member replayed past the synchronous
	// ticks (the hammered tail is whatever the journal's head acknowledged
	// — crash consistency, not a fixed count), still violation-free, and
	// still ticking.
	var postFleet oic.FleetInfo
	doJSON(t, base, "GET", "/v1/fleets/"+fleetInfo.ID, nil, &postFleet)
	if postFleet.Sessions != members || postFleet.Violations != 0 {
		t.Fatalf("recovered fleet %+v, want %d members and 0 violations", postFleet, members)
	}
	for m := 0; m < members; m++ {
		var mi oic.FleetMemberInfo
		doJSON(t, base, "GET", fmt.Sprintf("/v1/fleets/%s/sessions/%d", fleetInfo.ID, m), nil, &mi)
		if mi.T < syncTicks || mi.Violations != 0 {
			t.Fatalf("recovered member %d at t=%d with %d violations, want t≥%d and 0",
				m, mi.T, mi.Violations, syncTicks)
		}
	}
	doJSON(t, base, "POST", "/v1/fleets/"+fleetInfo.ID+"/tick",
		oic.FleetTickRequest{Ticks: 2}, &tickResp)

	_ = proc2.Process.Signal(syscall.SIGTERM)
	_ = proc2.Wait()
	if log := logs2.String(); !strings.Contains(log, "journal recovery done") ||
		!strings.Contains(log, fmt.Sprintf("sessions=1 fleets=1 members=%d", members)) ||
		!strings.Contains(log, "failed=0") {
		t.Fatalf("restart log does not attest the replay:\n%s", log)
	}
}

// startOicd launches the built binary with journaling on and returns the
// process plus its captured stderr log.
func startOicd(t *testing.T, bin, addr, journalDir string, extra ...string) (*exec.Cmd, *bytes.Buffer) {
	t.Helper()
	args := append([]string{"-addr", addr, "-journal-dir", journalDir, "-journal-sync", "step"}, extra...)
	cmd := exec.Command(bin, args...)
	logs := &bytes.Buffer{}
	cmd.Stderr = logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})
	return cmd, logs
}

// freeAddr reserves then releases a loopback port for the subprocess.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// waitHealthy polls /readyz until it reports ready — readiness, not
// liveness, is what gates traffic while recovery or preloading runs.
func waitHealthy(t *testing.T, base string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("server at %s not healthy within %v", base, timeout)
}

func doJSON(t *testing.T, base, method, path string, body, out any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, base+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode >= 300 {
		t.Fatalf("%s %s: status %d, body %s", method, path, resp.StatusCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, path, raw, err)
		}
	}
}

func doRaw(t *testing.T, base, path string) []byte {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d, body %q", path, resp.StatusCode, b)
	}
	return b
}
