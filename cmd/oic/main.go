// Command oic regenerates the paper's evaluation artifacts on any
// registered plant (-plant, default the adaptive cruise control case
// study):
//
//	oic plants  — list the registered plants and their scenario ladders
//	oic fig4    — savings histogram on the headline scenario (paper Fig. 4)
//	oic fig5    — savings across the plant's primary scenario ladder (Fig. 5)
//	oic fig6    — savings across the secondary ladder, if any (Fig. 6)
//	oic table1  — primary-ladder settings with measured savings (Table I)
//	oic timing  — Section IV-A computation-time analysis
//	oic sets    — the safety sets X ⊇ XI ⊇ X′ (Fig. 1)
//	oic budget  — the multi-step strengthened sets S_k (weakly-hard extension)
//	oic fleet   — sweep fleet sizes against a per-tick compute budget and
//	              report the achievable sessions-per-core curve (DESIGN.md §7);
//	              with -elastic, run the largest size continuously under the
//	              deadline-margin budget controller against an injected
//	              CPU-noise phase and compare with the static budget
//	              (DESIGN.md §13)
//	oic record  — run one seeded episode with tracing on and write the
//	              trace file (-out; canonical binary, or JSON with -trace-json)
//	oic replay  — replay a recorded trace file (-trace) under the same or a
//	              substituted policy (-replay-policy) / compute budget
//	              (-replay-budget) and report the diff (DESIGN.md §8)
//	oic export  — compile the configured engine and persist it as a .oica
//	              artifact (-out and/or a content-addressed -artifact-dir
//	              store) for warm oicd boots and `oic import` (DESIGN.md §9)
//	oic import  — load a .oica artifact (-artifact), verify it reconstructs
//	              a serving engine, and optionally file it into -artifact-dir
//	oic journal — inspect an oicd write-ahead journal directory
//	              (-journal-dir): fold its segments and report every
//	              session and fleet with its replay position (DESIGN.md §10)
//	oic cluster — operate a multi-node oicd cluster through its router:
//	              status, drain, live migration, and ops (recent
//	              migration/failover/recovery spans, phase by phase;
//	              DESIGN.md §11–§12); the router address comes from
//	              -addr, then $OICD_ADDR
//	oic all     — everything above except fleet, record, replay, export,
//	              import, and journal
//
// Every experiment is seeded and deterministic for a fixed -seed and
// -workers-independent. Use -csv to additionally emit raw per-case data.
// With -json, each command emits one machine-readable JSON document per
// result (the pkg/oic report wire types) on stdout — banners and timing
// move to stderr — so CI and dashboards consume structured output instead
// of scraping text. Flags may appear before or after the subcommand.
//
// The CLI is a client of the public pkg/oic facade: the engines it builds
// (compiled safety sets, parametric LP, trained policy) are the same ones
// the oicd server caches and serves.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"oic/internal/exp"
	"oic/internal/fault"
	"oic/internal/journal"
	"oic/internal/plant"
	"oic/internal/reach"
	"oic/pkg/oic"

	// Register the case studies.
	_ "oic/internal/acc"
	_ "oic/internal/orbit"
	_ "oic/internal/thermo"
)

func main() {
	fs := flag.NewFlagSet("oic", flag.ExitOnError)
	cases := fs.Int("cases", 500, "evaluation cases per scenario")
	steps := fs.Int("steps", 0, "control steps per episode (0 = plant default)")
	seed := fs.Int64("seed", 1, "random seed")
	train := fs.Int("train", 500, "DRL training episodes per scenario")
	workers := fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS; capped process-wide at GOMAXPROCS)")
	csv := fs.String("csv", "", "directory to write raw CSV data into")
	plantName := fs.String("plant", "acc", "plant to evaluate (see 'oic plants')")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON results on stdout (banners go to stderr)")
	fleetBudget := fs.Int("budget", 96, "fleet: κ-compute budget per tick")
	fleetTicks := fs.Int("ticks", 50, "fleet: ticks per fleet run")
	fleetSizes := fs.String("fleet-sizes", "250,500,1000,2000", "fleet: comma-separated fleet sizes to sweep")
	deadline := fs.Duration("deadline", 100*time.Millisecond, "fleet: real-time tick deadline (the plant's control period)")
	elasticRun := fs.Bool("elastic", false, "fleet: continuous elastic-budget run on the largest -fleet-sizes entry against an injected CPU-noise phase, compared with the static budget (DESIGN.md §13)")
	noiseRate := fs.Float64("noise", 0.8, "fleet -elastic: probability each middle-third tick carries injected CPU noise (fault site sched.noise)")
	policy := fs.String("policy", oic.PolicyBangBang, "record: skipping policy (always-run, bang-bang, drl)")
	scenario := fs.String("scenario", "", "record: scenario ID (empty = plant headline)")
	outFile := fs.String("out", "", "record: trace output file")
	traceJSON := fs.Bool("trace-json", false, "record: write the trace as JSON instead of canonical binary")
	traceFile := fs.String("trace", "", "replay: recorded trace file (binary or JSON, sniffed)")
	replayPolicy := fs.String("replay-policy", "", "replay: substitute policy (empty = the trace's)")
	replayBudget := fs.Int("replay-budget", 0, "replay: cap total κ computes (0 = unlimited; forced computes always run)")
	auditFlag := fs.Bool("audit", true, "replay: re-verify the recorded trace with the offline auditor")
	artifactFile := fs.String("artifact", "", "import: compiled engine artifact file (.oica)")
	artifactDir := fs.String("artifact-dir", "", "export/import: also write the artifact into this content-addressed store (oicd -artifact-dir)")
	journalDir := fs.String("journal-dir", "", "journal: oicd write-ahead journal directory to inspect")

	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: oic [flags] plants|fig4|fig5|fig6|table1|timing|sets|budget|fleet|record|replay|export|import|journal|cluster|all [flags]\n\n")
		fs.PrintDefaults()
	}
	// Parse flags first, then take the first positional argument as the
	// subcommand; re-parse whatever follows it so flags are accepted both
	// before and after the subcommand. (Scanning for the first non-flag
	// token would mistake flag *values* for the subcommand: in
	// `oic -csv out fig4`, "out" is -csv's value, not the subcommand.)
	// With ExitOnError, Parse exits on a bad flag itself.
	fs.Parse(os.Args[1:])
	cmd := fs.Arg(0)
	if cmd == "" {
		fs.Usage()
		os.Exit(2)
	}
	if cmd == "cluster" {
		// Cluster verbs parse their own flags (they take a router address,
		// not a plant), so they dispatch before the generic re-parse.
		doCluster(fs.Args()[1:])
		return
	}
	if fs.NArg() > 1 {
		fs.Parse(fs.Args()[1:])
		if fs.NArg() > 0 {
			fmt.Fprintf(os.Stderr, "oic: unexpected extra argument %q\n", fs.Arg(0))
			os.Exit(2)
		}
	}

	// emit prints a result: one JSON document in -json mode, the rendered
	// text report otherwise.
	emit := func(doc any, text string) error {
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			return enc.Encode(doc)
		}
		fmt.Print(text)
		return nil
	}

	if cmd == "plants" {
		if *jsonOut {
			// Same shape as oicd's GET /v1/plants, so one consumer parses both.
			if err := emit(map[string]any{"plants": oic.Plants()}, ""); err != nil {
				fmt.Fprintf(os.Stderr, "oic: %v\n", err)
				os.Exit(1)
			}
			return
		}
		listPlants()
		return
	}

	if cmd == "replay" {
		// Replay needs no -plant: the trace fingerprints its own engine.
		if *traceFile == "" {
			fmt.Fprintln(os.Stderr, "oic: replay requires -trace FILE")
			os.Exit(2)
		}
		tr, err := loadTrace(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oic: %v\n", err)
			os.Exit(1)
		}
		rep, err := oic.Replay(tr, oic.ReplayOptions{
			Policy: *replayPolicy, ComputeBudget: *replayBudget, Audit: *auditFlag,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "oic: replay: %v\n", err)
			os.Exit(1)
		}
		if err := emit(rep, renderReplay(tr, rep)); err != nil {
			fmt.Fprintf(os.Stderr, "oic: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if cmd == "import" {
		// Import needs no -plant: the artifact fingerprints its own engine.
		if *artifactFile == "" {
			fmt.Fprintln(os.Stderr, "oic: import requires -artifact FILE")
			os.Exit(2)
		}
		if err := doImport(*artifactFile, *artifactDir, emit); err != nil {
			fmt.Fprintf(os.Stderr, "oic: import: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if cmd == "journal" {
		// Journal inspection needs no -plant: the records carry their own
		// engine fingerprints.
		if *journalDir == "" {
			fmt.Fprintln(os.Stderr, "oic: journal requires -journal-dir DIR")
			os.Exit(2)
		}
		if err := doJournal(*journalDir, emit); err != nil {
			fmt.Fprintf(os.Stderr, "oic: journal: %v\n", err)
			os.Exit(1)
		}
		return
	}

	p, err := plant.Get(*plantName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oic: %v\n", err)
		os.Exit(2)
	}

	opt := exp.Options{
		Cases: *cases, Steps: *steps, Seed: *seed,
		TrainEpisodes: *train, Workers: *workers,
		KeepPerCase: *csv != "",
	}

	// Banners and completion lines go to stderr in -json mode so stdout
	// stays a clean JSON stream.
	banner := os.Stdout
	if *jsonOut {
		banner = os.Stderr
	}
	run := func(name string, f func() error) {
		t0 := time.Now()
		fmt.Fprintf(banner, "== %s [%s] ==\n", name, p.Name())
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "oic: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintf(banner, "(%s completed in %v)\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	writeCSV := func(name, content string) error {
		if *csv == "" {
			return nil
		}
		if err := os.MkdirAll(*csv, 0o755); err != nil {
			return err
		}
		return os.WriteFile(*csv+"/"+name, []byte(content), 0o644)
	}

	doFig4 := func() error {
		r, err := exp.Fig4(p, opt)
		if err != nil {
			return err
		}
		if err := emit(exp.JSONFig4(r), exp.RenderFig4(r)); err != nil {
			return err
		}
		return writeCSV("fig4.csv", exp.CSVFig4(r))
	}
	ladder := func(i int) (plant.Ladder, error) {
		ls := p.Ladders()
		if i >= len(ls) {
			return plant.Ladder{}, fmt.Errorf("plant %s has %d scenario ladder(s), no #%d", p.Name(), len(ls), i+1)
		}
		return ls[i], nil
	}
	doSweep := func(i int, csvName string, withTable bool) func() error {
		return func() error {
			l, err := ladder(i)
			if err != nil {
				return err
			}
			r, err := exp.Sweep(p, l, opt)
			if err != nil {
				return err
			}
			if err := emit(exp.JSONSeries(r), exp.RenderSeries(r)); err != nil {
				return err
			}
			if withTable {
				rows := exp.Table1FromSeries(r)
				if err := emit(exp.JSONTable1(p.Name(), rows), "\n"+exp.RenderTable1(rows)); err != nil {
					return err
				}
			}
			return writeCSV(csvName, exp.CSVSeries(r))
		}
	}
	doTable1 := func() error {
		rows, err := exp.Table1(p, opt)
		if err != nil {
			return err
		}
		return emit(exp.JSONTable1(p.Name(), rows), exp.RenderTable1(rows))
	}
	doTiming := func() error {
		r, err := exp.Timing(p, opt)
		if err != nil {
			return err
		}
		return emit(exp.JSONTiming(r), exp.RenderTiming(r))
	}

	// headlineEngine builds the facade engine the set inspections read
	// from — the same artifact set oicd would cache for this plant.
	headlineEngine := func() (*oic.Engine, error) {
		return oic.NewEngine(oic.Config{Plant: p.Name(), Policy: oic.PolicyBangBang})
	}
	doSets := func() error {
		eng, err := headlineEngine()
		if err != nil {
			return err
		}
		sets := eng.SafetySets()
		type setDoc struct {
			Name       string    `json:"name"`
			Halfspaces int       `json:"halfspaces"`
			Lo         []float64 `json:"lo,omitempty"`
			Hi         []float64 `json:"hi,omitempty"`
		}
		var docs []setDoc
		var b strings.Builder
		printSet := func(name string, rows int, loHi func() ([]float64, []float64, error)) {
			lo, hi, err := loHi()
			if err != nil {
				fmt.Fprintf(&b, "%-3s: error: %v\n", name, err)
				docs = append(docs, setDoc{Name: name, Halfspaces: rows})
				return
			}
			var dims []string
			for d := range lo {
				dims = append(dims, fmt.Sprintf("x%d∈[%.2f, %.2f]", d, lo[d], hi[d]))
			}
			fmt.Fprintf(&b, "%-3s: %2d halfspaces, bounding box %s\n", name, rows, strings.Join(dims, ", "))
			docs = append(docs, setDoc{Name: name, Halfspaces: rows, Lo: lo, Hi: hi})
		}
		fmt.Fprintf(&b, "safety sets of plant %q (Fig. 1: X' ⊆ XI ⊆ X):\n", p.Name())
		printSet("X", sets.X.NumRows(), sets.X.BoundingBox)
		printSet("XI", sets.XI.NumRows(), sets.XI.BoundingBox)
		printSet("X'", sets.XPrime.NumRows(), sets.XPrime.BoundingBox)
		ok1, _ := sets.XI.Covers(sets.XPrime, 1e-6)
		ok2, _ := sets.X.Covers(sets.XI, 1e-6)
		fmt.Fprintf(&b, "nesting verified: X' ⊆ XI: %v, XI ⊆ X: %v\n", ok1, ok2)
		if a, err := sets.XPrime.Volume2D(); err == nil {
			if bb, err := sets.XI.Volume2D(); err == nil && bb > 0 {
				fmt.Fprintf(&b, "area: X' %.1f, XI %.1f (skipping admissible on %.1f%% of XI)\n", a, bb, 100*a/bb)
			}
		}
		return emit(map[string]any{
			"kind": "sets", "plant": p.Name(), "sets": docs,
			"nested": ok1 && ok2,
		}, b.String())
	}
	doBudget := func() error {
		eng, err := headlineEngine()
		if err != nil {
			return err
		}
		chain, err := reach.ConsecutiveSkipSets(eng.SafetySets().XI, eng.System(), 8)
		if err != nil {
			return err
		}
		type skipDoc struct {
			K          int     `json:"k"`
			Halfspaces int     `json:"halfspaces"`
			Area       float64 `json:"area,omitempty"`
		}
		var docs []skipDoc
		var b strings.Builder
		fmt.Fprintf(&b, "multi-step strengthened sets S_k of plant %q (k consecutive skips certified):\n", p.Name())
		for k, s := range chain {
			line := fmt.Sprintf("  S%-2d %2d halfspaces", k+1, s.NumRows())
			doc := skipDoc{K: k + 1, Halfspaces: s.NumRows()}
			if area, err := s.Volume2D(); err == nil {
				line += fmt.Sprintf(", area %8.1f", area)
				doc.Area = area
			}
			fmt.Fprintln(&b, line)
			docs = append(docs, doc)
		}
		return emit(map[string]any{"kind": "budget", "plant": p.Name(), "sets": docs}, b.String())
	}

	// doFleetSweep runs the opportunistic fleet scheduler at each fleet
	// size against the fixed compute budget and reports whether a tick
	// fits the real-time deadline — the system-level form of the paper's
	// Table I savings: how many sessions one machine serves because
	// skipped computations are reclaimed capacity.
	doFleetSweep := func() error {
		eng, err := headlineEngine()
		if err != nil {
			return err
		}
		var sizes []int
		for _, tok := range strings.Split(*fleetSizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || n <= 0 {
				return fmt.Errorf("bad -fleet-sizes entry %q", tok)
			}
			sizes = append(sizes, n)
		}
		type point struct {
			Sessions       int     `json:"sessions"`
			MeanTickMS     float64 `json:"mean_tick_ms"`
			MaxTickMS      float64 `json:"max_tick_ms"`
			Utilization    float64 `json:"utilization"`
			ReclaimedRatio float64 `json:"reclaimed_ratio"`
			Shed           int64   `json:"shed"`
			Violations     int     `json:"violations"`
			RealTime       bool    `json:"real_time"`
		}
		var pts []point
		var b strings.Builder
		fmt.Fprintf(&b, "fleet sweep on plant %q: budget %d κ-computes/tick, %d ticks, deadline %v\n",
			p.Name(), *fleetBudget, *fleetTicks, *deadline)
		fmt.Fprintf(&b, "(real-time = worst steady-state tick ≤ deadline; tick 0 pays the one-time cold solves and is excluded)\n")
		fmt.Fprintf(&b, "%9s %12s %12s %12s %11s %9s %6s %s\n",
			"sessions", "mean tick", "max tick", "utilization", "reclaimed", "shed", "viol", "real-time")
		achievable := 0
		for _, size := range sizes {
			f, err := eng.NewFleet(oic.FleetConfig{ComputeBudget: *fleetBudget, MaxSessions: size})
			if err != nil {
				return err
			}
			ids := make([]int, size)
			traces := make([][][]float64, size)
			for i := 0; i < size; i++ {
				x0, w, err := eng.DrawCase(*seed+int64(i), *fleetTicks)
				if err != nil {
					f.Close()
					return err
				}
				if ids[i], err = f.Admit(x0); err != nil {
					f.Close()
					return err
				}
				traces[i] = w
			}
			ctx := context.Background()
			// Tick 0 pays every member's one-time cold κ solve and is
			// excluded from the latency statistics; steady state is what
			// the deadline question is about. Real-time means the *worst*
			// steady-state tick fits the control period — a tick over the
			// deadline is a missed control deadline, however good the mean.
			var meanNS, maxNS float64
			steady := *fleetTicks - 1
			if steady < 1 {
				steady = 1
			}
			for tk := 0; tk < *fleetTicks; tk++ {
				ws := make(map[int][]float64, size)
				for i, id := range ids {
					ws[id] = traces[i][tk]
				}
				rep, err := f.Tick(ctx, ws)
				if err != nil {
					f.Close()
					return err
				}
				if tk == 0 && *fleetTicks > 1 {
					continue
				}
				ns := float64(rep.Elapsed.Nanoseconds())
				meanNS += ns / float64(steady)
				if ns > maxNS {
					maxNS = ns
				}
			}
			st := f.Stats()
			f.Close()
			pt := point{
				Sessions:       size,
				MeanTickMS:     meanNS / 1e6,
				MaxTickMS:      maxNS / 1e6,
				Utilization:    st.Utilization,
				ReclaimedRatio: st.ReclaimedRatio,
				Shed:           st.Shed,
				Violations:     st.Violations,
				RealTime:       maxNS <= float64(deadline.Nanoseconds()),
			}
			pts = append(pts, pt)
			if pt.RealTime && size > achievable {
				achievable = size
			}
			fmt.Fprintf(&b, "%9d %10.2fms %10.2fms %12.2f %10.1f%% %9d %6d %v\n",
				pt.Sessions, pt.MeanTickMS, pt.MaxTickMS, pt.Utilization,
				100*pt.ReclaimedRatio, pt.Shed, pt.Violations, pt.RealTime)
		}
		cores := runtime.NumCPU()
		perCore := float64(achievable) / float64(cores)
		fmt.Fprintf(&b, "achievable in real time: %d sessions on %d cores = %.0f sessions/core\n",
			achievable, cores, perCore)
		return emit(map[string]any{
			"kind": "fleet", "plant": p.Name(),
			"compute_budget": *fleetBudget, "ticks": *fleetTicks,
			"deadline_ms":         float64(deadline.Nanoseconds()) / 1e6,
			"points":              pts,
			"achievable_sessions": achievable,
			"cores":               cores,
			"sessions_per_core":   perCore,
		}, b.String())
	}

	// doFleetElastic runs one large fleet continuously under the
	// elastic-budget controller (DESIGN.md §13) with a CPU-noise phase in
	// the middle third of the run — noisy ticks chosen by the seeded fault
	// injector (site sched.noise), so the disturbance schedule is identical
	// across both runs — then repeats the same workload under the static
	// budget and compares. The claim under test: the controller holds the
	// deadline margin ≥ 0 through the disturbance by shrinking the budget,
	// hands the compute back afterwards, and never sheds a forced compute,
	// so safety stays Theorem 1's (violations = 0).
	doFleetElastic := func() error {
		eng, err := headlineEngine()
		if err != nil {
			return err
		}
		size := 0
		for _, tok := range strings.Split(*fleetSizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || n <= 0 {
				return fmt.Errorf("bad -fleet-sizes entry %q", tok)
			}
			if n > size {
				size = n
			}
		}
		ticks := *fleetTicks
		if ticks < 6 {
			ticks = 6
		}
		noiseFrom, noiseTo := ticks/3, 2*ticks/3

		// The shared disturbance schedule: both runs burn CPU on exactly
		// the same ticks, decided once up front by the seeded injector.
		noisy := make([]bool, ticks)
		noisyCount := 0
		inj := fault.New(*seed)
		inj.Enable(fault.SiteSchedNoise, *noiseRate)
		for tk := noiseFrom; tk < noiseTo; tk++ {
			if inj.Hit(fault.SiteSchedNoise) != nil {
				noisy[tk] = true
				noisyCount++
			}
		}

		// burnStart spins half the cores until stop closes — the co-tenant
		// stealing CPU from the scheduler's worker pool during a noisy tick.
		spinners := runtime.NumCPU() / 2
		if spinners < 1 {
			spinners = 1
		}
		burnStart := func() (chan struct{}, *sync.WaitGroup) {
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < spinners; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					x := uint64(1)
					for {
						select {
						case <-stop:
							runtime.KeepAlive(x)
							return
						default:
						}
						for i := 0; i < 1<<14; i++ {
							x = x*2862933555777941757 + 3037000493
						}
					}
				}()
			}
			return stop, &wg
		}

		type phaseDoc struct {
			Phase      string  `json:"phase"`
			Ticks      int     `json:"ticks"`
			MarginOK   float64 `json:"margin_ok"` // fraction of ticks with deadline margin ≥ 0
			MinBudget  int     `json:"min_budget"`
			MeanBudget float64 `json:"mean_budget"`
			MaxBudget  int     `json:"max_budget"`
			Shed       int     `json:"shed"`
			Degraded   int     `json:"degraded"`
		}
		type runDoc struct {
			Mode                 string     `json:"mode"`
			Phases               []phaseDoc `json:"phases"`
			MarginOK             float64    `json:"margin_ok"`
			Violations           int        `json:"violations"`
			BudgetRaises         int64      `json:"budget_raises,omitempty"`
			BudgetLowers         int64      `json:"budget_lowers,omitempty"`
			BudgetFloors         int64      `json:"budget_floors,omitempty"`
			EffectiveMaxSessions int        `json:"effective_max_sessions,omitempty"`
		}
		phaseNames := [3]string{"calm", "noise", "calm"}
		phaseOf := func(tk int) int {
			switch {
			case tk < noiseFrom:
				return 0
			case tk < noiseTo:
				return 1
			default:
				return 2
			}
		}

		runOnce := func(elastic bool) (runDoc, error) {
			cfg := oic.FleetConfig{ComputeBudget: *fleetBudget, MaxSessions: size, TickDeadline: *deadline}
			doc := runDoc{Mode: "static"}
			if elastic {
				min := *fleetBudget / 4
				if min < 1 {
					min = 1
				}
				cfg.Elastic = &oic.ElasticConfig{MinBudget: min, MaxBudget: *fleetBudget * 2}
				doc.Mode = "elastic"
			}
			f, err := eng.NewFleet(cfg)
			if err != nil {
				return doc, err
			}
			defer f.Close()
			ids := make([]int, size)
			traces := make([][][]float64, size)
			for i := 0; i < size; i++ {
				x0, w, err := eng.DrawCase(*seed+int64(i), ticks)
				if err != nil {
					return doc, err
				}
				if ids[i], err = f.Admit(x0); err != nil {
					return doc, err
				}
				traces[i] = w
			}
			var phases [3]phaseDoc
			marginOK := make([]int, 3)
			for ph := range phases {
				phases[ph].Phase = phaseNames[ph]
				phases[ph].MinBudget = int(^uint(0) >> 1)
			}
			okTotal, counted := 0, 0
			ctx := context.Background()
			for tk := 0; tk < ticks; tk++ {
				ws := make(map[int][]float64, size)
				for i, id := range ids {
					ws[id] = traces[i][tk]
				}
				var stop chan struct{}
				var wg *sync.WaitGroup
				if noisy[tk] {
					stop, wg = burnStart()
				}
				rep, err := f.Tick(ctx, ws)
				if noisy[tk] {
					close(stop)
					wg.Wait()
				}
				if err != nil {
					return doc, err
				}
				// Tick 0 pays every member's one-time cold κ solve; like the
				// sweep, it is excluded from the statistics — the controller
				// question is about steady state.
				if tk == 0 && ticks > 1 {
					continue
				}
				ph := &phases[phaseOf(tk)]
				ph.Ticks++
				counted++
				if rep.DeadlineMargin >= 0 {
					marginOK[phaseOf(tk)]++
					okTotal++
				}
				if rep.Budget < ph.MinBudget {
					ph.MinBudget = rep.Budget
				}
				if rep.Budget > ph.MaxBudget {
					ph.MaxBudget = rep.Budget
				}
				ph.MeanBudget += float64(rep.Budget)
				ph.Shed += rep.Shed
				ph.Degraded += rep.Degraded
			}
			for ph := range phases {
				if phases[ph].Ticks > 0 {
					phases[ph].MarginOK = float64(marginOK[ph]) / float64(phases[ph].Ticks)
					phases[ph].MeanBudget /= float64(phases[ph].Ticks)
				} else {
					phases[ph].MinBudget = 0
				}
			}
			doc.Phases = phases[:]
			if counted > 0 {
				doc.MarginOK = float64(okTotal) / float64(counted)
			}
			st := f.Stats()
			doc.Violations = st.Violations
			doc.BudgetRaises = st.BudgetRaises
			doc.BudgetLowers = st.BudgetLowers
			doc.BudgetFloors = st.BudgetFloors
			doc.EffectiveMaxSessions = st.EffectiveMaxSessions
			return doc, nil
		}

		elasticDoc, err := runOnce(true)
		if err != nil {
			return err
		}
		staticDoc, err := runOnce(false)
		if err != nil {
			return err
		}

		var b strings.Builder
		loBudget := *fleetBudget / 4
		if loBudget < 1 {
			loBudget = 1
		}
		fmt.Fprintf(&b, "fleet elastic run on plant %q: %d sessions, %d ticks, deadline %v, budget %d (elastic %d..%d)\n",
			p.Name(), size, ticks, *deadline, *fleetBudget, loBudget, *fleetBudget*2)
		fmt.Fprintf(&b, "CPU noise: ticks %d..%d at rate %.2f → %d noisy ticks, %d spinner cores (fault site %s, seed %d)\n",
			noiseFrom, noiseTo-1, *noiseRate, noisyCount, spinners, fault.SiteSchedNoise, *seed)
		fmt.Fprintf(&b, "(tick 0 pays the one-time cold solves and is excluded)\n")
		fmt.Fprintf(&b, "%-8s %-6s %6s %9s %22s %8s %9s\n",
			"mode", "phase", "ticks", "margin≥0", "budget min/mean/max", "shed", "degraded")
		for _, doc := range []runDoc{elasticDoc, staticDoc} {
			for _, ph := range doc.Phases {
				fmt.Fprintf(&b, "%-8s %-6s %6d %8.1f%% %8d/%6.1f/%5d %8d %9d\n",
					doc.Mode, ph.Phase, ph.Ticks, 100*ph.MarginOK,
					ph.MinBudget, ph.MeanBudget, ph.MaxBudget, ph.Shed, ph.Degraded)
			}
		}
		fmt.Fprintf(&b, "elastic: margin ≥ 0 on %.1f%% of ticks, %d violations; raises %d, lowers %d, floors %d; admission cap %d/%d\n",
			100*elasticDoc.MarginOK, elasticDoc.Violations,
			elasticDoc.BudgetRaises, elasticDoc.BudgetLowers, elasticDoc.BudgetFloors,
			elasticDoc.EffectiveMaxSessions, size)
		fmt.Fprintf(&b, "static:  margin ≥ 0 on %.1f%% of ticks, %d violations\n",
			100*staticDoc.MarginOK, staticDoc.Violations)
		return emit(map[string]any{
			"kind": "fleet-elastic", "plant": p.Name(),
			"sessions": size, "ticks": ticks,
			"deadline_ms":    float64(deadline.Nanoseconds()) / 1e6,
			"compute_budget": *fleetBudget,
			"noise_rate":     *noiseRate, "noisy_ticks": noisyCount,
			"runs": []runDoc{elasticDoc, staticDoc},
		}, b.String())
	}

	// doRecord runs one seeded episode with tracing on and writes the
	// trace file — the producer side of the replay service, and the same
	// recipe the golden-trace corpus uses.
	doRecord := func() error {
		if *outFile == "" {
			return fmt.Errorf("record requires -out FILE")
		}
		cfg := oic.Config{Plant: p.Name(), Scenario: *scenario, Policy: *policy}
		if *policy == oic.PolicyDRL {
			cfg.Train = oic.TrainConfig{Episodes: *train}
		}
		eng, err := oic.NewEngine(cfg)
		if err != nil {
			return err
		}
		n := *steps
		if n <= 0 {
			n = eng.EpisodeSteps()
		}
		x0, w, err := eng.DrawCase(*seed, n)
		if err != nil {
			return err
		}
		s, err := eng.NewSession(x0)
		if err != nil {
			return err
		}
		defer s.Close()
		if err := s.StartTrace(0); err != nil {
			return err
		}
		if _, err := s.StepMany(context.Background(), w); err != nil {
			return err
		}
		tr, err := s.Trace()
		if err != nil {
			return err
		}
		var b []byte
		if *traceJSON {
			if b, err = json.MarshalIndent(tr, "", " "); err != nil {
				return err
			}
		} else if b, err = oic.EncodeTrace(tr); err != nil {
			return err
		}
		if err := os.WriteFile(*outFile, b, 0o644); err != nil {
			return err
		}
		info := s.Info()
		return emit(map[string]any{
			"kind": "record", "plant": p.Name(), "policy": eng.PolicyName(),
			"scenario": eng.ScenarioID(), "steps": tr.Len(), "bytes": len(b),
			"skips": info.Skips, "runs": info.Runs, "energy": info.Energy,
			"file": *outFile,
		}, fmt.Sprintf("recorded %s/%s under %s: %d steps (%d skips, %d runs, energy %.4g) → %s (%d bytes)\n",
			p.Name(), eng.ScenarioID(), eng.PolicyName(), tr.Len(), info.Skips, info.Runs, info.Energy, *outFile, len(b)))
	}

	// doExport compiles the configured engine (sets, LP, trained policy)
	// and persists it as a portable .oica artifact — the producer side of
	// oicd's warm boot (-artifact-dir -preload) and of `oic import`.
	doExport := func() error {
		if *outFile == "" && *artifactDir == "" {
			return fmt.Errorf("export requires -out FILE and/or -artifact-dir DIR")
		}
		cfg := oic.Config{Plant: p.Name(), Scenario: *scenario, Policy: *policy}
		if *policy == oic.PolicyDRL {
			cfg.Train = oic.TrainConfig{Episodes: *train}
		}
		eng, err := oic.NewEngine(cfg)
		if err != nil {
			return err
		}
		a, err := eng.Artifact()
		if err != nil {
			return err
		}
		b, err := oic.EncodeArtifact(a)
		if err != nil {
			return err
		}
		fp := cfg.Fingerprint()
		if *outFile != "" {
			if err := os.WriteFile(*outFile, b, 0o644); err != nil {
				return err
			}
		}
		stored := ""
		if *artifactDir != "" {
			st, err := oic.OpenArtifactStore(*artifactDir)
			if err != nil {
				return err
			}
			if err := st.Put(fp, a); err != nil {
				return err
			}
			stored = st.Path(fp)
		}
		var text strings.Builder
		fmt.Fprintf(&text, "exported %s: %d bytes (X %d, XI %d, X' %d halfspaces; skip chain S_1..S_%d",
			fp, len(b), a.Sets.X.NumRows(), a.Sets.XI.NumRows(), a.Sets.XPrime.NumRows(), len(a.Chain))
		if a.Policy != nil {
			fmt.Fprintf(&text, "; policy %s %v", a.Policy.Label, a.Policy.Sizes)
		}
		fmt.Fprintf(&text, ")\n")
		if *outFile != "" {
			fmt.Fprintf(&text, "  → %s\n", *outFile)
		}
		if stored != "" {
			fmt.Fprintf(&text, "  → %s\n", stored)
		}
		return emit(map[string]any{
			"kind": "export", "fingerprint": fp, "bytes": len(b),
			"plant": a.Meta.Plant, "scenario": a.Meta.Scenario, "policy": a.Meta.Policy,
			"chain": len(a.Chain), "file": *outFile, "stored": stored,
		}, text.String())
	}

	switch cmd {
	case "fig4":
		run("fig4", doFig4)
	case "fig5":
		run("fig5", doSweep(0, "fig5.csv", false))
	case "fig6":
		run("fig6", doSweep(1, "fig6.csv", false))
	case "table1":
		run("table1", doTable1)
	case "timing":
		run("timing", doTiming)
	case "sets":
		run("sets", doSets)
	case "budget":
		run("budget", doBudget)
	case "fleet":
		if *elasticRun {
			run("fleet -elastic", doFleetElastic)
		} else {
			run("fleet", doFleetSweep)
		}
	case "record":
		run("record", doRecord)
	case "export":
		run("export", doExport)
	case "all":
		run("sets", doSets)
		run("budget", doBudget)
		run("fig4", doFig4)
		run("timing", doTiming)
		run("fig5+table1", doSweep(0, "fig5.csv", true))
		if len(p.Ladders()) > 1 {
			run("fig6", doSweep(1, "fig6.csv", false))
		}
	default:
		fmt.Fprintf(os.Stderr, "oic: unknown command %q\n", cmd)
		fs.Usage()
		os.Exit(2)
	}
}

// doImport loads a compiled engine artifact, verifies it reconstructs a
// serving engine (full codec validation, skip-chain monotonicity, policy
// restore), prints its summary, and optionally files it into a
// content-addressed store for oicd to preload.
func doImport(path, dir string, emit func(doc any, text string) error) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	a, err := oic.DecodeArtifact(b)
	if err != nil {
		return err
	}
	eng, err := oic.LoadEngine(a)
	if err != nil {
		return err
	}
	fp := oic.ConfigFromArtifact(a).Fingerprint()
	stored := ""
	if dir != "" {
		st, err := oic.OpenArtifactStore(dir)
		if err != nil {
			return err
		}
		if err := st.Put(fp, a); err != nil {
			return err
		}
		stored = st.Path(fp)
	}
	var text strings.Builder
	fmt.Fprintf(&text, "imported %s (%d bytes): engine %s/%s under %s, %d×%d system\n",
		path, len(b), a.Meta.Plant, eng.ScenarioID(), eng.PolicyName(), eng.NX(), eng.NU())
	fmt.Fprintf(&text, "  sets X %d, XI %d, X' %d halfspaces; skip chain S_1..S_%d\n",
		a.Sets.X.NumRows(), a.Sets.XI.NumRows(), a.Sets.XPrime.NumRows(), len(a.Chain))
	if a.Policy != nil {
		fmt.Fprintf(&text, "  policy %s, layers %v, memory %d (trained %d episodes, mean reward %.4g)\n",
			a.Policy.Label, a.Policy.Sizes, a.Policy.Memory, a.Train.Episodes, a.Train.MeanReward)
	}
	fmt.Fprintf(&text, "  fingerprint %s\n", fp)
	if stored != "" {
		fmt.Fprintf(&text, "  → %s\n", stored)
	}
	return emit(map[string]any{
		"kind": "import", "fingerprint": fp, "bytes": len(b),
		"plant": a.Meta.Plant, "scenario": a.Meta.Scenario, "policy": a.Meta.Policy,
		"nx": eng.NX(), "nu": eng.NU(), "chain": len(a.Chain), "stored": stored,
	}, text.String())
}

// loadTrace reads a trace file in any encoding a user plausibly saved:
// the canonical binary form (sniffed by its "OICT" magic), a bare JSON
// trace (oic record -trace-json), or the server's GET .../trace response
// (the {"id", "trace"} wrapper, saved straight from curl).
func loadTrace(path string) (*oic.Trace, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) >= 4 && string(b[:4]) == "OICT" {
		return oic.DecodeTrace(b)
	}
	var wrapped oic.TraceResponse
	if err := json.Unmarshal(b, &wrapped); err != nil {
		return nil, fmt.Errorf("%s: not a binary trace and not JSON: %w", path, err)
	}
	tr := wrapped.Trace
	if tr == nil {
		tr = &oic.Trace{}
		if err := json.Unmarshal(b, tr); err != nil {
			return nil, fmt.Errorf("%s: not a binary trace and not JSON: %w", path, err)
		}
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

// renderReplay formats a replay report for terminals.
func renderReplay(tr *oic.Trace, rep *oic.ReplayReport) string {
	var b strings.Builder
	d := rep.Diff
	fmt.Fprintf(&b, "replay of %s/%s episode (%d steps, recorded under %s)\n",
		rep.Plant, rep.Scenario, tr.Len(), rep.RecordedPolicy)
	fmt.Fprintf(&b, "replayed under %s", rep.ReplayedPolicy)
	if rep.ComputeBudget > 0 {
		fmt.Fprintf(&b, ", compute budget %d (%d shed)", rep.ComputeBudget, rep.Shed)
	}
	fmt.Fprintln(&b)
	if d.Identical {
		fmt.Fprintf(&b, "conformance: IDENTICAL — decisions and states reproduce byte-for-byte\n")
	} else {
		fmt.Fprintf(&b, "diverged: %d decision flips (first at %d), states diverge at step %d, max L∞ %.4g\n",
			d.DecisionFlips, d.FirstFlip, d.DivergeStep, d.MaxStateDivergence)
	}
	fmt.Fprintf(&b, "computes: %d → %d (forced %d → %d)\n", d.ComputesA, d.ComputesB, d.ForcedA, d.ForcedB)
	fmt.Fprintf(&b, "energy:   %.6g → %.6g (Δ %+.4g)\n", d.EnergyA, d.EnergyB, d.EnergyB-d.EnergyA)
	fmt.Fprintf(&b, "safety:   XI margin %.4g → %.4g, violations %d\n",
		rep.SafetyMarginRecorded, rep.SafetyMarginReplayed, rep.Violations)
	if rep.Audit != nil {
		if rep.Audit.Clean {
			fmt.Fprintf(&b, "audit:    recorded trace clean over %d steps\n", rep.Audit.Steps)
		} else {
			fmt.Fprintf(&b, "audit:    %d findings on the recorded trace (first: step %d %s: %s)\n",
				len(rep.Audit.Findings), rep.Audit.Findings[0].Step, rep.Audit.Findings[0].Kind, rep.Audit.Findings[0].Msg)
		}
	}
	fmt.Fprintf(&b, "(replayed in %v)\n", rep.Elapsed.Round(time.Microsecond))
	return b.String()
}

func listPlants() {
	fmt.Println("registered plants:")
	for _, info := range oic.Plants() {
		fmt.Printf("  %-8s %s\n", info.Name, info.Description)
		fmt.Printf("  %-8s headline %s; cost metric %q; %d steps/episode\n",
			"", info.Headline.ID, info.CostLabel, info.EpisodeSteps)
		for _, l := range info.Ladders {
			ids := make([]string, len(l.Scenarios))
			for i, sc := range l.Scenarios {
				ids[i] = sc.ID
			}
			fmt.Printf("  %-8s ladder %q: %s\n", "", l.Name, strings.Join(ids, ", "))
		}
	}
}

// doJournal folds an oicd write-ahead journal directory and reports what a
// recovery would rebuild: every session and fleet the journal knows, its
// replay position, and the directory-level accounting (segments, records,
// torn tails, orphans). Read-only — inspection never truncates a torn
// tail on disk or mutates a segment.
func doJournal(dir string, emit func(doc any, text string) error) error {
	rv, err := journal.Recover(dir)
	if err != nil {
		return err
	}
	rv.SortMembers()
	liveSessions, liveFleets := rv.Live()

	var text strings.Builder
	fmt.Fprintf(&text, "journal %s: %d segment(s), %d record(s)", dir, rv.Segments, rv.Records)
	if rv.TornTails > 0 {
		fmt.Fprintf(&text, ", %d torn tail(s)", rv.TornTails)
	}
	if rv.Orphans > 0 {
		fmt.Fprintf(&text, ", %d orphan record(s)", rv.Orphans)
	}
	fmt.Fprintf(&text, "\n")

	type sessionDoc struct {
		ID     string `json:"id"`
		Plant  string `json:"plant"`
		Policy string `json:"policy"`
		Steps  int    `json:"steps"`
		Closed bool   `json:"closed,omitempty"`
	}
	type fleetDoc struct {
		ID      string `json:"id"`
		Plant   string `json:"plant"`
		Policy  string `json:"policy"`
		Budget  int    `json:"compute_budget"`
		Members int    `json:"members"`
		Live    int    `json:"live_members"`
		Steps   int    `json:"steps"`
		Closed  bool   `json:"closed,omitempty"`
	}
	sessions := make([]sessionDoc, 0, len(rv.Sessions))
	for _, st := range rv.Sessions {
		sessions = append(sessions, sessionDoc{
			ID: st.ID, Plant: st.Meta.Plant, Policy: st.Meta.Policy,
			Steps: len(st.Steps), Closed: st.Closed,
		})
		state := "open"
		if st.Closed {
			state = "closed"
		}
		fmt.Fprintf(&text, "  session %-8s %s/%s %s  %4d step(s)  %s\n",
			st.ID, st.Meta.Plant, st.Meta.Scenario, st.Meta.Policy, len(st.Steps), state)
	}
	fleets := make([]fleetDoc, 0, len(rv.Fleets))
	for _, fs := range rv.Fleets {
		live, steps := 0, 0
		for _, m := range fs.Members {
			if !m.Evicted {
				live++
			}
			steps += len(m.Steps)
		}
		fleets = append(fleets, fleetDoc{
			ID: fs.ID, Plant: fs.Meta.Plant, Policy: fs.Meta.Policy,
			Budget: fs.Budget, Members: len(fs.Members), Live: live,
			Steps: steps, Closed: fs.Closed,
		})
		state := "open"
		if fs.Closed {
			state = "closed"
		}
		fmt.Fprintf(&text, "  fleet   %-8s %s/%s %s  budget %d  %d member(s) (%d live)  %d step(s)  %s\n",
			fs.ID, fs.Meta.Plant, fs.Meta.Scenario, fs.Meta.Policy,
			fs.Budget, len(fs.Members), live, steps, state)
	}
	fmt.Fprintf(&text, "  replay-to-head would resume %d session(s) and %d fleet(s)\n",
		liveSessions, liveFleets)

	return emit(map[string]any{
		"kind": "journal", "dir": dir,
		"segments": rv.Segments, "records": rv.Records,
		"torn_tails": rv.TornTails, "orphans": rv.Orphans,
		"live_sessions": liveSessions, "live_fleets": liveFleets,
		"sessions": sessions, "fleets": fleets,
	}, text.String())
}
