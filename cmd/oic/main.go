// Command oic regenerates the paper's evaluation artifacts on the adaptive
// cruise control case study:
//
//	oic fig4    — Fig. 4 fuel-saving histogram (bang-bang and DRL vs RMPC-only)
//	oic fig5    — Fig. 5 savings across the v_f ranges of Ex.1–Ex.5
//	oic fig6    — Fig. 6 savings across the regularity ladder Ex.6–Ex.10
//	oic table1  — Table I settings with measured savings
//	oic timing  — Section IV-A computation-time analysis
//	oic sets    — the safety sets X ⊇ XI ⊇ X′ of the case study (Fig. 1)
//	oic budget  — the multi-step strengthened sets S_k (weakly-hard extension)
//	oic all     — everything above
//
// Every experiment is seeded and deterministic for a fixed -seed and
// -workers-independent. Use -csv to additionally emit raw per-case data.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"oic/internal/acc"
	"oic/internal/exp"
	"oic/internal/reach"
)

func main() {
	fs := flag.NewFlagSet("oic", flag.ExitOnError)
	cases := fs.Int("cases", 500, "evaluation cases per scenario")
	steps := fs.Int("steps", 100, "control steps per episode")
	seed := fs.Int64("seed", 1, "random seed")
	train := fs.Int("train", 500, "DRL training episodes per scenario")
	workers := fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	csv := fs.String("csv", "", "directory to write raw CSV data into")

	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: oic [flags] fig4|fig5|fig6|table1|timing|sets|budget|all\n\n")
		fs.PrintDefaults()
	}
	if len(os.Args) < 2 {
		fs.Usage()
		os.Exit(2)
	}
	// Accept flags before or after the subcommand.
	args := os.Args[1:]
	var cmd string
	for i, a := range args {
		if len(a) > 0 && a[0] != '-' {
			cmd = a
			args = append(args[:i], args[i+1:]...)
			break
		}
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if cmd == "" {
		fs.Usage()
		os.Exit(2)
	}

	opt := exp.Options{
		Cases: *cases, Steps: *steps, Seed: *seed,
		TrainEpisodes: *train, Workers: *workers,
	}

	run := func(name string, f func() error) {
		t0 := time.Now()
		fmt.Printf("== %s ==\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "oic: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	writeCSV := func(name, content string) error {
		if *csv == "" {
			return nil
		}
		if err := os.MkdirAll(*csv, 0o755); err != nil {
			return err
		}
		return os.WriteFile(*csv+"/"+name, []byte(content), 0o644)
	}

	doFig4 := func() error {
		r, err := exp.Fig4(opt)
		if err != nil {
			return err
		}
		fmt.Print(exp.RenderFig4(r))
		return writeCSV("fig4.csv", exp.CSVFig4(r))
	}
	doFig5 := func(withTable bool) func() error {
		return func() error {
			r, err := exp.Fig5(opt)
			if err != nil {
				return err
			}
			fmt.Print(exp.RenderSeries("Figure 5 — DRL fuel saving vs v_f range (Ex.1–Ex.5)", r,
				"paper shape: savings increase as the range narrows (≈7%→13%)"))
			if withTable {
				fmt.Println()
				fmt.Print(exp.RenderTable1(exp.Table1FromSeries(r)))
			}
			return writeCSV("fig5.csv", exp.CSVSeries(r))
		}
	}
	doFig6 := func() error {
		r, err := exp.Fig6(opt)
		if err != nil {
			return err
		}
		fmt.Print(exp.RenderSeries("Figure 6 — DRL fuel saving vs regularity (Ex.6–Ex.10)", r,
			"paper shape: savings rise with regularity Ex.7→Ex.10; Ex.6 (pure random) is an outlier"))
		return writeCSV("fig6.csv", exp.CSVSeries(r))
	}
	doTable1 := func() error {
		rows, err := exp.Table1(opt)
		if err != nil {
			return err
		}
		fmt.Print(exp.RenderTable1(rows))
		return nil
	}
	doTiming := func() error {
		r, err := exp.Timing(opt)
		if err != nil {
			return err
		}
		fmt.Print(exp.RenderTiming(r))
		return nil
	}
	doSets := func() error {
		m, err := acc.NewModel(acc.Config{})
		if err != nil {
			return err
		}
		printSet := func(name string, rows int, loHi func() ([]float64, []float64, error)) {
			lo, hi, err := loHi()
			if err != nil {
				fmt.Printf("%-3s: error: %v\n", name, err)
				return
			}
			fmt.Printf("%-3s: %2d halfspaces, bounding box s∈[%.2f, %.2f], v∈[%.2f, %.2f]\n",
				name, rows, lo[0], hi[0], lo[1], hi[1])
		}
		fmt.Println("safety sets of the ACC case study (Fig. 1: X' ⊆ XI ⊆ X):")
		printSet("X", m.Sets.X.NumRows(), m.Sets.X.BoundingBox)
		printSet("XI", m.Sets.XI.NumRows(), m.Sets.XI.BoundingBox)
		printSet("X'", m.Sets.XPrime.NumRows(), m.Sets.XPrime.BoundingBox)
		ok1, _ := m.Sets.XI.Covers(m.Sets.XPrime, 1e-6)
		ok2, _ := m.Sets.X.Covers(m.Sets.XI, 1e-6)
		fmt.Printf("nesting verified: X' ⊆ XI: %v, XI ⊆ X: %v\n", ok1, ok2)
		if a, err := m.Sets.XPrime.Volume2D(); err == nil {
			b, _ := m.Sets.XI.Volume2D()
			fmt.Printf("area: X' %.1f, XI %.1f (skipping admissible on %.1f%% of XI)\n", a, b, 100*a/b)
		}
		return nil
	}

	doBudget := func() error {
		m, err := acc.NewModel(acc.Config{})
		if err != nil {
			return err
		}
		chain, err := reach.ConsecutiveSkipSets(m.Sets.XI, m.Sys, 8)
		if err != nil {
			return err
		}
		fmt.Println("multi-step strengthened sets S_k (k consecutive skips certified):")
		for k, s := range chain {
			area, err := s.Volume2D()
			if err != nil {
				return err
			}
			fmt.Printf("  S%-2d %2d halfspaces, area %8.1f\n", k+1, s.NumRows(), area)
		}
		return nil
	}

	switch cmd {
	case "fig4":
		run("fig4", doFig4)
	case "fig5":
		run("fig5", doFig5(false))
	case "fig6":
		run("fig6", doFig6)
	case "table1":
		run("table1", doTable1)
	case "timing":
		run("timing", doTiming)
	case "sets":
		run("sets", doSets)
	case "budget":
		run("budget", doBudget)
	case "all":
		run("sets", doSets)
		run("budget", doBudget)
		run("fig4", doFig4)
		run("timing", doTiming)
		run("fig5+table1", doFig5(true))
		run("fig6", doFig6)
	default:
		fmt.Fprintf(os.Stderr, "oic: unknown command %q\n", cmd)
		fs.Usage()
		os.Exit(2)
	}
}
