// Command oic regenerates the paper's evaluation artifacts on any
// registered plant (-plant, default the adaptive cruise control case
// study):
//
//	oic plants  — list the registered plants and their scenario ladders
//	oic fig4    — savings histogram on the headline scenario (paper Fig. 4)
//	oic fig5    — savings across the plant's primary scenario ladder (Fig. 5)
//	oic fig6    — savings across the secondary ladder, if any (Fig. 6)
//	oic table1  — primary-ladder settings with measured savings (Table I)
//	oic timing  — Section IV-A computation-time analysis
//	oic sets    — the safety sets X ⊇ XI ⊇ X′ (Fig. 1)
//	oic budget  — the multi-step strengthened sets S_k (weakly-hard extension)
//	oic all     — everything above
//
// Every experiment is seeded and deterministic for a fixed -seed and
// -workers-independent. Use -csv to additionally emit raw per-case data.
// Flags may appear before or after the subcommand.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"oic/internal/exp"
	"oic/internal/plant"
	"oic/internal/reach"

	// Register the case studies.
	_ "oic/internal/acc"
	_ "oic/internal/orbit"
	_ "oic/internal/thermo"
)

func main() {
	fs := flag.NewFlagSet("oic", flag.ExitOnError)
	cases := fs.Int("cases", 500, "evaluation cases per scenario")
	steps := fs.Int("steps", 0, "control steps per episode (0 = plant default)")
	seed := fs.Int64("seed", 1, "random seed")
	train := fs.Int("train", 500, "DRL training episodes per scenario")
	workers := fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS; capped process-wide at GOMAXPROCS)")
	csv := fs.String("csv", "", "directory to write raw CSV data into")
	plantName := fs.String("plant", "acc", "plant to evaluate (see 'oic plants')")

	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: oic [flags] plants|fig4|fig5|fig6|table1|timing|sets|budget|all [flags]\n\n")
		fs.PrintDefaults()
	}
	// Parse flags first, then take the first positional argument as the
	// subcommand; re-parse whatever follows it so flags are accepted both
	// before and after the subcommand. (Scanning for the first non-flag
	// token would mistake flag *values* for the subcommand: in
	// `oic -csv out fig4`, "out" is -csv's value, not the subcommand.)
	// With ExitOnError, Parse exits on a bad flag itself.
	fs.Parse(os.Args[1:])
	cmd := fs.Arg(0)
	if cmd == "" {
		fs.Usage()
		os.Exit(2)
	}
	if fs.NArg() > 1 {
		fs.Parse(fs.Args()[1:])
		if fs.NArg() > 0 {
			fmt.Fprintf(os.Stderr, "oic: unexpected extra argument %q\n", fs.Arg(0))
			os.Exit(2)
		}
	}

	if cmd == "plants" {
		listPlants()
		return
	}

	p, err := plant.Get(*plantName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oic: %v\n", err)
		os.Exit(2)
	}

	opt := exp.Options{
		Cases: *cases, Steps: *steps, Seed: *seed,
		TrainEpisodes: *train, Workers: *workers,
		KeepPerCase: *csv != "",
	}

	run := func(name string, f func() error) {
		t0 := time.Now()
		fmt.Printf("== %s [%s] ==\n", name, p.Name())
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "oic: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	writeCSV := func(name, content string) error {
		if *csv == "" {
			return nil
		}
		if err := os.MkdirAll(*csv, 0o755); err != nil {
			return err
		}
		return os.WriteFile(*csv+"/"+name, []byte(content), 0o644)
	}

	doFig4 := func() error {
		r, err := exp.Fig4(p, opt)
		if err != nil {
			return err
		}
		fmt.Print(exp.RenderFig4(r))
		return writeCSV("fig4.csv", exp.CSVFig4(r))
	}
	ladder := func(i int) (plant.Ladder, error) {
		ls := p.Ladders()
		if i >= len(ls) {
			return plant.Ladder{}, fmt.Errorf("plant %s has %d scenario ladder(s), no #%d", p.Name(), len(ls), i+1)
		}
		return ls[i], nil
	}
	doSweep := func(i int, csvName string, withTable bool) func() error {
		return func() error {
			l, err := ladder(i)
			if err != nil {
				return err
			}
			r, err := exp.Sweep(p, l, opt)
			if err != nil {
				return err
			}
			fmt.Print(exp.RenderSeries(r))
			if withTable {
				fmt.Println()
				fmt.Print(exp.RenderTable1(exp.Table1FromSeries(r)))
			}
			return writeCSV(csvName, exp.CSVSeries(r))
		}
	}
	doTable1 := func() error {
		rows, err := exp.Table1(p, opt)
		if err != nil {
			return err
		}
		fmt.Print(exp.RenderTable1(rows))
		return nil
	}
	doTiming := func() error {
		r, err := exp.Timing(p, opt)
		if err != nil {
			return err
		}
		fmt.Print(exp.RenderTiming(r))
		return nil
	}
	doSets := func() error {
		inst, err := p.Instantiate(p.Headline())
		if err != nil {
			return err
		}
		sets := inst.Sets()
		printSet := func(name string, rows int, loHi func() ([]float64, []float64, error)) {
			lo, hi, err := loHi()
			if err != nil {
				fmt.Printf("%-3s: error: %v\n", name, err)
				return
			}
			var dims []string
			for d := range lo {
				dims = append(dims, fmt.Sprintf("x%d∈[%.2f, %.2f]", d, lo[d], hi[d]))
			}
			fmt.Printf("%-3s: %2d halfspaces, bounding box %s\n", name, rows, strings.Join(dims, ", "))
		}
		fmt.Printf("safety sets of plant %q (Fig. 1: X' ⊆ XI ⊆ X):\n", p.Name())
		printSet("X", sets.X.NumRows(), sets.X.BoundingBox)
		printSet("XI", sets.XI.NumRows(), sets.XI.BoundingBox)
		printSet("X'", sets.XPrime.NumRows(), sets.XPrime.BoundingBox)
		ok1, _ := sets.XI.Covers(sets.XPrime, 1e-6)
		ok2, _ := sets.X.Covers(sets.XI, 1e-6)
		fmt.Printf("nesting verified: X' ⊆ XI: %v, XI ⊆ X: %v\n", ok1, ok2)
		if a, err := sets.XPrime.Volume2D(); err == nil {
			if b, err := sets.XI.Volume2D(); err == nil && b > 0 {
				fmt.Printf("area: X' %.1f, XI %.1f (skipping admissible on %.1f%% of XI)\n", a, b, 100*a/b)
			}
		}
		return nil
	}
	doBudget := func() error {
		inst, err := p.Instantiate(p.Headline())
		if err != nil {
			return err
		}
		chain, err := reach.ConsecutiveSkipSets(inst.Sets().XI, inst.System(), 8)
		if err != nil {
			return err
		}
		fmt.Printf("multi-step strengthened sets S_k of plant %q (k consecutive skips certified):\n", p.Name())
		for k, s := range chain {
			line := fmt.Sprintf("  S%-2d %2d halfspaces", k+1, s.NumRows())
			if area, err := s.Volume2D(); err == nil {
				line += fmt.Sprintf(", area %8.1f", area)
			}
			fmt.Println(line)
		}
		return nil
	}

	switch cmd {
	case "fig4":
		run("fig4", doFig4)
	case "fig5":
		run("fig5", doSweep(0, "fig5.csv", false))
	case "fig6":
		run("fig6", doSweep(1, "fig6.csv", false))
	case "table1":
		run("table1", doTable1)
	case "timing":
		run("timing", doTiming)
	case "sets":
		run("sets", doSets)
	case "budget":
		run("budget", doBudget)
	case "all":
		run("sets", doSets)
		run("budget", doBudget)
		run("fig4", doFig4)
		run("timing", doTiming)
		run("fig5+table1", doSweep(0, "fig5.csv", true))
		if len(p.Ladders()) > 1 {
			run("fig6", doSweep(1, "fig6.csv", false))
		}
	default:
		fmt.Fprintf(os.Stderr, "oic: unknown command %q\n", cmd)
		fs.Usage()
		os.Exit(2)
	}
}

func listPlants() {
	fmt.Println("registered plants:")
	for _, name := range plant.Names() {
		p, err := plant.Get(name)
		if err != nil {
			continue
		}
		fmt.Printf("  %-8s %s\n", name, p.Description())
		fmt.Printf("  %-8s headline %s; cost metric %q; %d steps/episode\n",
			"", p.Headline().ID, p.CostLabel(), p.EpisodeSteps())
		for _, l := range p.Ladders() {
			ids := make([]string, len(l.Scenarios))
			for i, sc := range l.Scenarios {
				ids[i] = sc.ID
			}
			fmt.Printf("  %-8s ladder %q: %s\n", "", l.Name, strings.Join(ids, ", "))
		}
	}
}
