package main

// oic cluster — operator verbs against a running oicd-router:
//
//	oic cluster status                          per-node health, load, ownership
//	oic cluster drain   -node NAME              live-migrate every session off a node
//	oic cluster migrate -session ID [-target N] live-migrate one session
//	oic cluster ops                             recent migration/failover/recovery spans
//
// ops also works against a single oicd node (-addr pointing at the node):
// both serve GET /v1/debug/ops.
//
// Like every oic verb that talks to a server, the address comes from
// -addr, defaulting to $OICD_ADDR and then http://127.0.0.1:8080.

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"syscall"
	"time"

	"oic/internal/cluster"
	"oic/internal/obs"
	"oic/pkg/oic"
)

// serverAddr resolves the server address every remote oic verb uses:
// explicit flag value, else $OICD_ADDR, else the local default.
func serverAddr(flagValue string) string {
	addr := flagValue
	if addr == "" {
		addr = os.Getenv("OICD_ADDR")
	}
	if addr == "" {
		addr = "http://127.0.0.1:8080"
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// cleanNetErr turns transport failures into one-line operator messages —
// "connection refused" instead of a wrapped url.Error chain.
func cleanNetErr(addr string, err error) error {
	if errors.Is(err, syscall.ECONNREFUSED) {
		return fmt.Errorf("cannot reach %s: connection refused (is oicd-router running?)", addr)
	}
	var uerr *url.Error
	if errors.As(err, &uerr) {
		return fmt.Errorf("cannot reach %s: %v", addr, uerr.Err)
	}
	return err
}

func doCluster(args []string) {
	fs := flag.NewFlagSet("oic cluster", flag.ExitOnError)
	addrFlag := fs.String("addr", "", "oicd-router base URL (default $OICD_ADDR, then http://127.0.0.1:8080)")
	node := fs.String("node", "", "drain: node name to evacuate")
	session := fs.String("session", "", "migrate: session ID to move")
	target := fs.String("target", "", "migrate: destination node (empty = placement chooses)")
	jsonOut := fs.Bool("json", false, "emit the raw JSON response")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: oic cluster status|drain|migrate|ops [flags]\n\n")
		fs.PrintDefaults()
	}
	if len(args) == 0 {
		fs.Usage()
		os.Exit(2)
	}
	verb := args[0]
	_ = fs.Parse(args[1:])
	addr := serverAddr(*addrFlag)
	client := &http.Client{Timeout: 5 * time.Minute}

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "oic: cluster %s: %v\n", verb, err)
		os.Exit(1)
	}

	switch verb {
	case "status":
		var st cluster.ClusterStatus
		if err := clusterCall(client, addr, http.MethodGet, "/v1/cluster", nil, &st); err != nil {
			fail(err)
		}
		if *jsonOut {
			_ = json.NewEncoder(os.Stdout).Encode(st)
			return
		}
		fmt.Printf("cluster: %d session(s), %d fleet(s) routed", st.Sessions, st.Fleets)
		if st.Lost > 0 {
			fmt.Printf(", %d lost", st.Lost)
		}
		fmt.Println()
		for _, n := range st.Nodes {
			state := "ready"
			switch {
			case n.Dead:
				state = "DEAD"
			case !n.Live:
				state = "down"
			case !n.Ready:
				state = "not-ready"
			}
			fmt.Printf("  %-12s %-24s %-9s sessions %d (owned %d)  fleets %d (owned %d)  pressure %.2f  reclaimed %.2f\n",
				n.Name, n.Addr, state, n.Sessions, n.OwnedSessions, n.Fleets, n.OwnedFleets, n.Pressure, n.ReclaimedRatio)
		}
	case "drain":
		if *node == "" {
			fmt.Fprintln(os.Stderr, "oic: cluster drain requires -node NAME")
			os.Exit(2)
		}
		var rep cluster.DrainReport
		body, _ := json.Marshal(cluster.DrainRequest{Node: *node})
		if err := clusterCall(client, addr, http.MethodPost, "/v1/cluster/drain", body, &rep); err != nil {
			fail(err)
		}
		if *jsonOut {
			_ = json.NewEncoder(os.Stdout).Encode(rep)
			return
		}
		fmt.Printf("drained %s: %d migrated, %d failed", rep.Node, rep.Migrated, rep.Failed)
		if rep.FleetsSkipped > 0 {
			fmt.Printf(", %d fleet(s) left pinned", rep.FleetsSkipped)
		}
		fmt.Println()
		for _, e := range rep.Errors {
			fmt.Printf("  ! %s\n", e)
		}
	case "migrate":
		if *session == "" {
			fmt.Fprintln(os.Stderr, "oic: cluster migrate requires -session ID")
			os.Exit(2)
		}
		var rep cluster.MigrateReport
		body, _ := json.Marshal(cluster.MigrateRequest{Session: *session, Target: *target})
		if err := clusterCall(client, addr, http.MethodPost, "/v1/cluster/migrate", body, &rep); err != nil {
			fail(err)
		}
		if *jsonOut {
			_ = json.NewEncoder(os.Stdout).Encode(rep)
			return
		}
		kind := "migrated"
		if rep.Failover {
			kind = "failed over"
		}
		fmt.Printf("%s %s: %s → %s, %d step(s) replayed in %.1f ms\n",
			kind, rep.Session, rep.From, rep.To, rep.Steps, rep.Millis)
	case "ops":
		var out struct {
			Spans []obs.SpanRecord `json:"spans"`
		}
		if err := clusterCall(client, addr, http.MethodGet, "/v1/debug/ops", nil, &out); err != nil {
			fail(err)
		}
		if *jsonOut {
			_ = json.NewEncoder(os.Stdout).Encode(out)
			return
		}
		if len(out.Spans) == 0 {
			fmt.Println("no recorded operations")
			return
		}
		for _, sp := range out.Spans {
			status := "ok"
			if sp.Err != "" {
				status = "FAILED: " + sp.Err
			}
			fmt.Printf("%s  %-10s %-12s %8.1f ms  trace %s  %s\n",
				sp.Start.Format(time.RFC3339), sp.Op, sp.ID,
				float64(sp.Elapsed)/float64(time.Millisecond), sp.TraceID, status)
			for _, ph := range sp.Phases {
				fmt.Printf("    %-10s %8.1f ms\n", ph.Name, float64(ph.Elapsed)/float64(time.Millisecond))
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "oic: unknown cluster verb %q\n", verb)
		fs.Usage()
		os.Exit(2)
	}
}

// clusterCall performs one router round trip, decoding either the result
// or the server's uniform error payload.
func clusterCall(client *http.Client, addr, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = strings.NewReader(string(body))
	}
	req, err := http.NewRequest(method, addr+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return cleanNetErr(addr, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return cleanNetErr(addr, err)
	}
	if resp.StatusCode >= 300 {
		var er oic.ErrorResponse
		if json.Unmarshal(b, &er) == nil && er.Error != "" {
			return fmt.Errorf("%s (%s)", er.Error, er.Code)
		}
		return fmt.Errorf("server answered %d", resp.StatusCode)
	}
	return json.Unmarshal(b, out)
}
