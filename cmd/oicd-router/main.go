// Command oicd-router is the multi-node front end of oicd (DESIGN.md
// §11): it speaks the full /v1/* API of a single node, shards sessions
// and fleets across a cluster of oicd processes by consistent-hashing
// their canonical config fingerprints, and keeps every session movable —
// live migration drains a session through freeze → trace export →
// replay-to-head with bit-exact verification, and node death triggers
// automatic failover from the router's shadow episodes.
//
// The membership file is static JSON:
//
//	{"nodes": [{"name": "a", "addr": "http://127.0.0.1:8081"},
//	           {"name": "b", "addr": "http://127.0.0.1:8082"}]}
//
// Cluster operations (also exposed as `oic cluster ...`):
//
//	GET  /v1/cluster          status: health, load, ownership per node
//	POST /v1/cluster/migrate  {"session": "c-1", "target": "b"}
//	POST /v1/cluster/drain    {"node": "a"}
//	GET  /v1/debug/ops        recent migration/failover spans, per phase
//
// Every request is tagged with an X-Oic-Trace-Id (minted here when the
// client sends none) that the router forwards on all proxied node calls,
// so one grep correlates the router's and the shard's structured logs
// (DESIGN.md §12).
//
// Usage:
//
//	oicd-router -cluster nodes.json [-addr :8080] [-probe-interval 1s]
//	            [-vnodes 64] [-pressure-max 1.0] [-death-threshold 3]
//	            [-failover] [-shadow-limit 100000]
//	            [-log-level info] [-log-format text]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"oic/internal/cluster"
	"oic/internal/obs"

	// Register the case studies: the router canonicalizes configs (scenario
	// resolution needs the plant registry) even though it runs no engines.
	_ "oic/internal/acc"
	_ "oic/internal/orbit"
	_ "oic/internal/thermo"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	clusterFile := flag.String("cluster", "", "membership file (required): JSON list of node names and base URLs")
	probeInterval := flag.Duration("probe-interval", time.Second, "health/load probe period")
	vnodes := flag.Int("vnodes", 64, "virtual nodes per member on the placement ring")
	pressureMax := flag.Float64("pressure-max", 1.0, "skip nodes whose worst fleet pressure (forced computes / budget) reached this")
	deathThreshold := flag.Int("death-threshold", 3, "consecutive failed liveness probes before a node is declared dead")
	failover := flag.Bool("failover", true, "on node death, re-home its sessions onto survivors from shadow episodes")
	shadowLimit := flag.Int("shadow-limit", 100_000, "per-session shadow episode cap (sessions beyond it cannot fail over)")
	nodeTimeout := flag.Duration("node-timeout", 30*time.Second, "per-request timeout for node round trips")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second, "graceful-shutdown drain window")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, or error (debug logs every request)")
	logFormat := flag.String("log-format", "text", "log encoding: text or json")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oicd-router: %v\n", err)
		os.Exit(2)
	}
	log := logger.With("component", "oicd-router")
	fatal := func(msg string, args ...any) {
		log.Error(msg, args...)
		os.Exit(1)
	}

	if *clusterFile == "" {
		fatal("-cluster is required")
	}
	mem, err := cluster.LoadMembership(*clusterFile)
	if err != nil {
		fatal("loading membership", "file", *clusterFile, "error", err)
	}
	rt, err := cluster.New(mem, cluster.Config{
		Vnodes:         *vnodes,
		PressureMax:    *pressureMax,
		ShadowLimit:    *shadowLimit,
		DeathThreshold: *deathThreshold,
		AutoFailover:   *failover,
		Client:         &http.Client{Timeout: *nodeTimeout},
		Logger:         logger,
	})
	if err != nil {
		fatal("building router", "error", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	rt.Start(ctx, *probeInterval)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       60 * time.Second,
		WriteTimeout:      120 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Info("serving", "addr", *addr, "nodes", len(mem.Nodes),
		"probe_interval", *probeInterval, "failover", *failover)

	select {
	case err := <-errc:
		fatal("serve failed", "error", err)
	case <-ctx.Done():
	}

	log.Info("shutting down", "grace", *shutdownGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Warn("shutdown", "error", err)
	}
	rt.Stop()
	log.Info("bye")
}
