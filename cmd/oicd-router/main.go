// Command oicd-router is the multi-node front end of oicd (DESIGN.md
// §11): it speaks the full /v1/* API of a single node, shards sessions
// and fleets across a cluster of oicd processes by consistent-hashing
// their canonical config fingerprints, and keeps every session movable —
// live migration drains a session through freeze → trace export →
// replay-to-head with bit-exact verification, and node death triggers
// automatic failover from the router's shadow episodes.
//
// The membership file is static JSON:
//
//	{"nodes": [{"name": "a", "addr": "http://127.0.0.1:8081"},
//	           {"name": "b", "addr": "http://127.0.0.1:8082"}]}
//
// Cluster operations (also exposed as `oic cluster ...`):
//
//	GET  /v1/cluster          status: health, load, ownership per node
//	POST /v1/cluster/migrate  {"session": "c-1", "target": "b"}
//	POST /v1/cluster/drain    {"node": "a"}
//
// Usage:
//
//	oicd-router -cluster nodes.json [-addr :8080] [-probe-interval 1s]
//	            [-vnodes 64] [-pressure-max 1.0] [-death-threshold 3]
//	            [-failover] [-shadow-limit 100000]
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"oic/internal/cluster"

	// Register the case studies: the router canonicalizes configs (scenario
	// resolution needs the plant registry) even though it runs no engines.
	_ "oic/internal/acc"
	_ "oic/internal/orbit"
	_ "oic/internal/thermo"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	clusterFile := flag.String("cluster", "", "membership file (required): JSON list of node names and base URLs")
	probeInterval := flag.Duration("probe-interval", time.Second, "health/load probe period")
	vnodes := flag.Int("vnodes", 64, "virtual nodes per member on the placement ring")
	pressureMax := flag.Float64("pressure-max", 1.0, "skip nodes whose worst fleet pressure (forced computes / budget) reached this")
	deathThreshold := flag.Int("death-threshold", 3, "consecutive failed liveness probes before a node is declared dead")
	failover := flag.Bool("failover", true, "on node death, re-home its sessions onto survivors from shadow episodes")
	shadowLimit := flag.Int("shadow-limit", 100_000, "per-session shadow episode cap (sessions beyond it cannot fail over)")
	nodeTimeout := flag.Duration("node-timeout", 30*time.Second, "per-request timeout for node round trips")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second, "graceful-shutdown drain window")
	flag.Parse()

	if *clusterFile == "" {
		log.Fatalf("oicd-router: -cluster is required")
	}
	mem, err := cluster.LoadMembership(*clusterFile)
	if err != nil {
		log.Fatalf("oicd-router: %v", err)
	}
	rt, err := cluster.New(mem, cluster.Config{
		Vnodes:         *vnodes,
		PressureMax:    *pressureMax,
		ShadowLimit:    *shadowLimit,
		DeathThreshold: *deathThreshold,
		AutoFailover:   *failover,
		Client:         &http.Client{Timeout: *nodeTimeout},
	})
	if err != nil {
		log.Fatalf("oicd-router: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	rt.Start(ctx, *probeInterval)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       60 * time.Second,
		WriteTimeout:      120 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("oicd-router: serving on %s over %d node(s) (probe %v, failover %v)",
		*addr, len(mem.Nodes), *probeInterval, *failover)

	select {
	case err := <-errc:
		log.Fatalf("oicd-router: %v", err)
	case <-ctx.Done():
	}

	log.Printf("oicd-router: shutting down (grace %v)", *shutdownGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("oicd-router: shutdown: %v", err)
	}
	rt.Stop()
	log.Printf("oicd-router: bye")
}
