package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"oic/internal/cluster"
	"oic/pkg/oic"
)

// TestClusterMigrateFailoverSmoke is the multi-node acceptance test:
// real oicd binaries on two shards behind a real oicd-router subprocess.
//
// Part 1 — live migration: a session created through the router is
// stepped 100 times, migrated to the other node mid-run via
// POST /v1/cluster/migrate, stepped 100 more, and its binary trace must
// be byte-identical to 200 uninterrupted steps of the same episode on
// the in-process library path.
//
// Part 2 — failover at fleet scale: 200 sessions over distinct engine
// configurations (so placement spreads them across both shards) are
// stepped halfway, then one node is SIGKILLed mid-stepping (no graceful
// path). The router's probes declare the node dead, re-home every one of
// its sessions from the shadow episodes onto the survivor, and retried
// steps complete all 200 episodes with zero safety violations — each
// trace byte-identical to the same episode run uninterrupted on the
// library path.
func TestClusterMigrateFailoverSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess cluster test; skipped in -short")
	}
	tmp := t.TempDir()
	binNode := filepath.Join(tmp, "oicd")
	binRouter := filepath.Join(tmp, "oicd-router")
	for bin, dir := range map[string]string{binNode: "../oicd", binRouter: "."} {
		build := exec.Command("go", "build", "-o", bin, dir)
		build.Env = os.Environ()
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", dir, err, out)
		}
	}

	// Two shards plus the router, all real subprocesses on loopback.
	nodeAddrs := map[string]string{"a": freeAddr(t), "b": freeAddr(t)}
	procs := make(map[string]*exec.Cmd, len(nodeAddrs))
	mem := cluster.Membership{}
	for _, name := range []string{"a", "b"} {
		addr := nodeAddrs[name]
		mem.Nodes = append(mem.Nodes, cluster.Node{Name: name, Addr: "http://" + addr})
		cmd := exec.Command(binNode, "-addr", addr,
			"-journal-dir", filepath.Join(tmp, "journal-"+name), "-journal-sync", "step")
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		procs[name] = cmd
		t.Cleanup(func() {
			if cmd.ProcessState == nil {
				_ = cmd.Process.Kill()
				_ = cmd.Wait()
			}
		})
	}
	memFile := filepath.Join(tmp, "nodes.json")
	memJSON, err := json.Marshal(mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(memFile, memJSON, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, addr := range nodeAddrs {
		waitReady(t, "http://"+addr, 30*time.Second)
	}

	routerAddr := freeAddr(t)
	router := exec.Command(binRouter, "-addr", routerAddr, "-cluster", memFile,
		"-probe-interval", "50ms", "-death-threshold", "2")
	router.Stderr = os.Stderr
	if err := router.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if router.ProcessState == nil {
			_ = router.Process.Kill()
			_ = router.Wait()
		}
	})
	base := "http://" + routerAddr
	waitReady(t, base, 30*time.Second)

	// The deterministic episode both halves replay: library DrawCase so
	// the reference below consumes the exact same disturbances.
	eng, err := oic.NewEngine(oic.Config{Plant: "acc"})
	if err != nil {
		t.Fatal(err)
	}
	const steps = 200
	x0, ws, err := eng.DrawCase(9, steps)
	if err != nil {
		t.Fatal(err)
	}
	reference := libraryTrace(t, eng, x0, ws)

	// --- Part 1: live migration mid-run. ---
	var info oic.SessionInfo
	doJSON(t, base, "POST", "/v1/sessions", oic.CreateSessionRequest{Plant: "acc", X0: x0}, &info)
	for i := 0; i < steps/2; i++ {
		doJSON(t, base, "POST", "/v1/sessions/"+info.ID+"/step", oic.StepRequest{W: ws[i]}, nil)
	}
	var report cluster.MigrateReport
	doJSON(t, base, "POST", "/v1/cluster/migrate", cluster.MigrateRequest{Session: info.ID}, &report)
	if report.From == report.To || report.Steps != steps/2 {
		t.Fatalf("migrate report %+v: want a cross-node move of %d steps", report, steps/2)
	}
	for i := steps / 2; i < steps; i++ {
		doJSON(t, base, "POST", "/v1/sessions/"+info.ID+"/step", oic.StepRequest{W: ws[i]}, nil)
	}
	var post oic.SessionInfo
	doJSON(t, base, "GET", "/v1/sessions/"+info.ID, nil, &post)
	if post.T != steps || post.Violations != 0 {
		t.Fatalf("migrated session: %+v, want t=%d and 0 violations", post, steps)
	}
	if got := doRaw(t, base, "/v1/sessions/"+info.ID+"/trace?format=binary"); !bytes.Equal(got, reference) {
		t.Fatalf("migrated trace differs from uninterrupted reference (%d vs %d bytes)",
			len(got), len(reference))
	}
	// Clear the table so part 2's ownership counts are exactly its own.
	doJSON(t, base, "DELETE", "/v1/sessions/"+info.ID, nil, nil)

	// --- Part 2: 200 sessions, SIGKILL one shard mid-stepping; failover
	// must finish every episode bit-exactly on the survivor. ---
	//
	// Placement keys on the canonical config fingerprint, so distinct
	// plant×policy bindings spread the population across both nodes
	// while every node stays far under its engine-cache cap.
	const (
		fleetSessions = 200
		fleetSteps    = 24
	)
	cfgs := []oic.Config{
		{Plant: "acc", Policy: oic.PolicyBangBang},
		{Plant: "acc", Policy: oic.PolicyAlwaysRun},
		{Plant: "thermo", Policy: oic.PolicyBangBang},
		{Plant: "thermo", Policy: oic.PolicyAlwaysRun},
		{Plant: "orbit", Policy: oic.PolicyBangBang},
		{Plant: "orbit", Policy: oic.PolicyAlwaysRun},
	}
	type episode struct {
		id  string
		cfg int
		x0  []float64
		ws  [][]float64
	}
	engines := make([]*oic.Engine, len(cfgs))
	for s, cfg := range cfgs {
		e, err := oic.NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		engines[s] = e
	}
	eps := make([]*episode, fleetSessions)
	for i := range eps {
		c := i % len(cfgs)
		x0i, wsi, err := engines[c].DrawCase(int64(1000+i), fleetSteps)
		if err != nil {
			t.Fatal(err)
		}
		var si oic.SessionInfo
		doJSON(t, base, "POST", "/v1/sessions",
			oic.CreateSessionRequest{Plant: cfgs[c].Plant, Policy: cfgs[c].Policy, X0: x0i}, &si)
		eps[i] = &episode{id: si.ID, cfg: c, x0: x0i, ws: wsi}
	}
	for i := 0; i < fleetSteps/2; i++ {
		for _, ep := range eps {
			doJSON(t, base, "POST", "/v1/sessions/"+ep.id+"/step", oic.StepRequest{W: ep.ws[i]}, nil)
		}
	}

	// Both shards must actually hold a share, or the kill proves nothing.
	var cs cluster.ClusterStatus
	doJSON(t, base, "GET", "/v1/cluster", nil, &cs)
	victim, victimOwned := "", 0
	for _, n := range cs.Nodes {
		if n.OwnedSessions == 0 {
			t.Fatalf("node %q owns nothing — placement did not spread: %+v", n.Name, cs)
		}
		if n.OwnedSessions > victimOwned {
			victim, victimOwned = n.Name, n.OwnedSessions
		}
	}

	// SIGKILL the bigger owner mid-stepping: the kill fires from a
	// goroutine while the second half of the stepping is in flight, so
	// some sessions die with unacknowledged steps. The shadow episodes
	// record acknowledged steps only, so failover replays a killed
	// session to its last ack and the client retry is exactly-once.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(150 * time.Millisecond)
		_ = procs[victim].Process.Kill() // SIGKILL: no drain, no flush
		_ = procs[victim].Wait()
	}()
	deadline := time.Now().Add(120 * time.Second)
	for i := fleetSteps / 2; i < fleetSteps; i++ {
		for _, ep := range eps {
			for {
				st, body := tryJSON(t, base, "POST", "/v1/sessions/"+ep.id+"/step", oic.StepRequest{W: ep.ws[i]})
				if st == http.StatusOK {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("session %s step %d still failing after kill: status %d, body %s",
						ep.id, i, st, body)
				}
				time.Sleep(25 * time.Millisecond)
			}
		}
	}
	<-killed

	// Every episode finished on the survivor: zero violations, and the
	// binary trace byte-identical to an uninterrupted library run.
	for _, ep := range eps {
		var si oic.SessionInfo
		doJSON(t, base, "GET", "/v1/sessions/"+ep.id, nil, &si)
		if si.T != fleetSteps || si.Violations != 0 {
			t.Fatalf("session %s after failover: %+v, want t=%d and 0 violations", ep.id, si, fleetSteps)
		}
		got := doRaw(t, base, "/v1/sessions/"+ep.id+"/trace?format=binary")
		want := libraryTrace(t, engines[ep.cfg], ep.x0, ep.ws)
		if !bytes.Equal(got, want) {
			t.Fatalf("session %s trace differs from uninterrupted reference (%d vs %d bytes)",
				ep.id, len(got), len(want))
		}
	}

	// The cluster status attests the death and the re-homing.
	doJSON(t, base, "GET", "/v1/cluster", nil, &cs)
	for _, n := range cs.Nodes {
		switch n.Name {
		case victim:
			if n.Live || !n.Dead || n.OwnedSessions != 0 {
				t.Fatalf("killed node %q still looks alive: %+v", victim, n)
			}
		default:
			if !n.Ready || n.OwnedSessions != fleetSessions {
				t.Fatalf("survivor %q does not own all %d sessions: %+v", n.Name, fleetSessions, n)
			}
		}
	}
	if cs.Lost != 0 {
		t.Fatalf("failover lost %d session(s)", cs.Lost)
	}
}

// libraryTrace runs one episode uninterrupted on the in-process library
// path and exports its binary trace — the byte-identity oracle.
func libraryTrace(t *testing.T, eng *oic.Engine, x0 []float64, ws [][]float64) []byte {
	t.Helper()
	s, err := eng.NewSession(x0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.StartTrace(100_000); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StepMany(context.Background(), ws); err != nil {
		t.Fatal(err)
	}
	tr, err := s.Trace()
	if err != nil {
		t.Fatal(err)
	}
	bin, err := oic.EncodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// freeAddr reserves then releases a loopback port for a subprocess.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// waitReady polls /readyz until it answers 200.
func waitReady(t *testing.T, base string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s not ready within %v", base, timeout)
}

func doJSON(t *testing.T, base, method, path string, body, out any) {
	t.Helper()
	st, raw := tryJSON(t, base, method, path, body)
	if st >= 300 {
		t.Fatalf("%s %s: status %d, body %s", method, path, st, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, path, raw, err)
		}
	}
}

// tryJSON performs one request and reports (status, body) without
// failing the test — the failover retry loop needs the error statuses.
func tryJSON(t *testing.T, base, method, path string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, base+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if rd != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, []byte(fmt.Sprintf("transport: %v", err))
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func doRaw(t *testing.T, base, path string) []byte {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d, body %q", path, resp.StatusCode, b)
	}
	return b
}
